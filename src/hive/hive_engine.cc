#include "hive/hive_engine.h"

namespace shark {

ClusterConfig HadoopClusterConfig(const ClusterConfig& shark_config) {
  ClusterConfig cfg = shark_config;
  cfg.profile = EngineProfile::Hadoop();
  return cfg;
}

void ApplyHiveOptions(SharkSession* session, const HiveConfig& config) {
  ExecOptions& opts = session->options();
  opts.pde = false;
  opts.join_opt = JoinOptimization::kStatic;
  opts.map_pruning = false;     // no memory store, no partition statistics
  opts.use_copartition = false;  // HDFS is schema-agnostic (§3.4)
  if (config.num_reducers > 0) {
    opts.static_reducers = config.num_reducers;
    opts.bytes_per_reducer = 0;
  } else {
    opts.static_reducers = 0;
    opts.bytes_per_reducer = config.bytes_per_reducer;
  }
  // Hive never broadcasts without statistics; keep a conservative threshold
  // so only tiny catalog-known tables map-join.
  opts.broadcast_threshold_bytes = 32ULL * 1024 * 1024;
}

int HiveReducerHeuristic(uint64_t input_virtual_bytes,
                         uint64_t bytes_per_reducer) {
  if (bytes_per_reducer == 0) return 1;
  uint64_t reducers =
      (input_virtual_bytes + bytes_per_reducer - 1) / bytes_per_reducer;
  return reducers < 1 ? 1 : static_cast<int>(reducers);
}

Status MirrorDfsTables(SharkSession* src, SharkSession* dst) {
  for (const std::string& name : src->catalog().TableNames()) {
    SHARK_ASSIGN_OR_RETURN(const TableInfo* info, src->catalog().Get(name));
    if (info->dfs_file.empty()) continue;  // memory-only tables don't mirror
    if (dst->catalog().Exists(name)) continue;
    TableInfo copy;
    copy.name = info->name;
    copy.schema = info->schema;
    copy.dfs_file = info->dfs_file;
    copy.format = info->format;
    copy.approx_rows = info->approx_rows;
    copy.approx_bytes = info->approx_bytes;
    SHARK_RETURN_NOT_OK(dst->catalog().CreateTable(std::move(copy)));
  }
  return Status::OK();
}

Result<std::unique_ptr<SharkSession>> MakeHiveSession(
    SharkSession* shark_session, const HiveConfig& config) {
  ClusterConfig cfg = HadoopClusterConfig(shark_session->context().config());
  auto ctx = std::make_shared<ClusterContext>(
      cfg, shark_session->shared_context()->shared_dfs());
  auto session = std::make_unique<SharkSession>(std::move(ctx));
  ApplyHiveOptions(session.get(), config);
  SHARK_RETURN_NOT_OK(MirrorDfsTables(shark_session, session.get()));
  return session;
}

}  // namespace shark
