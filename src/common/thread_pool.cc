#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace shark {

ThreadPool::ThreadPool(int num_workers) {
  SHARK_CHECK(num_workers >= 1);
  queues_.resize(static_cast<size_t>(num_workers));
  run_counts_.assign(static_cast<size_t>(num_workers) + 1, 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::vector<uint64_t> ThreadPool::RunCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_counts_;
}

uint64_t ThreadPool::Steals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steals_;
}

ThreadPool::Job* ThreadPool::ClaimJobLocked(int worker) {
  // Own deque first, oldest job first. Entries whose job already left the
  // pending state were claimed directly by a waiting thread; discard them.
  auto pop_pending = [](std::deque<Job*>* q, bool from_front) -> Job* {
    while (!q->empty()) {
      Job* j;
      if (from_front) {
        j = q->front();
        q->pop_front();
      } else {
        j = q->back();
        q->pop_back();
      }
      if (j->batch->states_[j->index] == TaskBatch::JobState::kPending) {
        return j;
      }
    }
    return nullptr;
  };

  Job* job = nullptr;
  if (worker >= 0) {
    job = pop_pending(&queues_[static_cast<size_t>(worker)], true);
  }
  if (job == nullptr) {
    // Steal from the back of the most loaded peer.
    size_t victim = queues_.size();
    size_t victim_size = 0;
    for (size_t q = 0; q < queues_.size(); ++q) {
      if (static_cast<int>(q) == worker) continue;
      if (queues_[q].size() > victim_size) {
        victim_size = queues_[q].size();
        victim = q;
      }
    }
    // The longest queue may hold only stale entries; fall through the rest.
    for (size_t step = 0; job == nullptr && step < queues_.size(); ++step) {
      size_t q = (victim + step) % queues_.size();
      if (static_cast<int>(q) == worker) continue;
      job = pop_pending(&queues_[q], false);
    }
  }
  if (job != nullptr) {
    job->batch->states_[job->index] = TaskBatch::JobState::kRunning;
  }
  return job;
}

void ThreadPool::RunClaimedJob(Job* job, std::unique_lock<std::mutex>* lock,
                               int worker) {
  TaskBatch* batch = job->batch;
  const size_t index = job->index;
  lock->unlock();
  std::exception_ptr error;
  try {
    job->fn();
  } catch (...) {
    error = std::current_exception();
  }
  lock->lock();
  batch->states_[index] = TaskBatch::JobState::kDone;
  batch->errors_[index] = error;
  size_t slot = worker < 0 ? queues_.size() : static_cast<size_t>(worker);
  run_counts_[slot] += 1;
  if (worker < 0 || worker != job->home_queue) steals_ += 1;
  batch->done_cv_.notify_all();
}

void ThreadPool::WorkerLoop(int worker) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Job* job = ClaimJobLocked(worker);
    if (job != nullptr) {
      RunClaimedJob(job, &lock, worker);
      continue;
    }
    if (shutdown_) return;
    work_cv_.wait(lock);
  }
}

size_t TaskBatch::Submit(std::function<void()> fn) {
  if (pool_ == nullptr) {
    size_t index = jobs_.size();
    jobs_.push_back(ThreadPool::Job{std::move(fn), this, index, 0});
    states_.push_back(JobState::kPending);
    errors_.emplace_back();
    return index;
  }
  std::lock_guard<std::mutex> lock(pool_->mu_);
  size_t index = jobs_.size();
  int queue = static_cast<int>(pool_->next_queue_ % pool_->queues_.size());
  pool_->next_queue_ += 1;
  jobs_.push_back(ThreadPool::Job{std::move(fn), this, index, queue});
  states_.push_back(JobState::kPending);
  errors_.emplace_back();
  pool_->queues_[static_cast<size_t>(queue)].push_back(&jobs_.back());
  pool_->work_cv_.notify_one();
  return index;
}

bool TaskBatch::Wait(size_t index) {
  SHARK_CHECK(index < jobs_.size());
  if (pool_ == nullptr) {
    if (states_[index] == JobState::kPending) {
      states_[index] = JobState::kRunning;
      try {
        jobs_[index].fn();
        errors_[index] = nullptr;
      } catch (...) {
        errors_[index] = std::current_exception();
      }
      states_[index] = JobState::kDone;
    }
    if (errors_[index]) std::rethrow_exception(errors_[index]);
    return states_[index] == JobState::kDone;
  }
  std::unique_lock<std::mutex> lock(pool_->mu_);
  while (true) {
    JobState s = states_[index];
    if (s == JobState::kDone) {
      if (errors_[index]) {
        std::exception_ptr error = errors_[index];
        lock.unlock();
        std::rethrow_exception(error);
      }
      return true;
    }
    if (s == JobState::kCancelled) return false;
    if (s == JobState::kPending) {
      // Claim the target directly; its (now stale) queue entry is skipped
      // when a worker eventually pops it.
      states_[index] = JobState::kRunning;
      pool_->RunClaimedJob(&jobs_[index], &lock, -1);
      continue;
    }
    // Target is running on another thread: help with other pending work.
    ThreadPool::Job* other = pool_->ClaimJobLocked(-1);
    if (other != nullptr) {
      pool_->RunClaimedJob(other, &lock, -1);
      continue;
    }
    done_cv_.wait(lock);
  }
}

bool TaskBatch::AnyRunningLocked() const {
  for (JobState s : states_) {
    if (s == JobState::kRunning) return true;
  }
  return false;
}

void TaskBatch::CancelAndDrain() {
  if (pool_ == nullptr) {
    for (JobState& s : states_) {
      if (s == JobState::kPending) s = JobState::kCancelled;
    }
    return;
  }
  std::unique_lock<std::mutex> lock(pool_->mu_);
  for (auto& queue : pool_->queues_) {
    std::erase_if(queue,
                  [this](ThreadPool::Job* j) { return j->batch == this; });
  }
  for (JobState& s : states_) {
    if (s == JobState::kPending) s = JobState::kCancelled;
  }
  done_cv_.wait(lock, [this] { return !AnyRunningLocked(); });
}

bool TaskBatch::Ran(size_t index) const {
  SHARK_CHECK(index < jobs_.size());
  if (pool_ == nullptr) return states_[index] == JobState::kDone;
  std::lock_guard<std::mutex> lock(pool_->mu_);
  return states_[index] == JobState::kDone;
}

}  // namespace shark
