#ifndef SHARK_COMMON_METRICS_H_
#define SHARK_COMMON_METRICS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace shark {

/// Escapes a Prometheus label value for the text exposition format:
/// backslash -> \\, double quote -> \", newline -> \n.
std::string PrometheusEscape(const std::string& value);

/// Maps a string onto the Prometheus metric-name alphabet
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid character becomes '_', and a
/// leading digit gets a '_' prefix. Empty input becomes "_".
std::string SanitizeMetricName(const std::string& name);

/// Monotonically increasing count (tasks launched, bytes fetched, spills).
/// Mutated only from the scheduler's single-threaded event loop, so a plain
/// integer suffices and every read is deterministic.
class Counter {
 public:
  void Increment(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time value, either set explicitly or pulled through a callback
/// at exposition time (the Prometheus "collect" pattern — lets the registry
/// observe components like the block cache without owning them).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void SetCallback(std::function<double()> fn) { callback_ = std::move(fn); }
  double Value() const { return callback_ ? callback_() : value_; }

 private:
  double value_ = 0.0;
  std::function<double()> callback_;
};

/// Distribution metric backed by the PDE ApproxHistogram; exposed as a
/// Prometheus summary (quantiles + sum-less count).
class HistogramMetric {
 public:
  explicit HistogramMetric(int buckets = 64) : hist_(buckets) {}
  void Observe(double v) { hist_.Add(v); }
  const ApproxHistogram& histogram() const { return hist_; }

 private:
  ApproxHistogram hist_;
};

/// Registry of named metrics with deterministic registration order: the
/// text exposition and counter snapshots list metrics exactly in the order
/// they were registered, which is fixed by construction code, never by map
/// iteration or thread timing. One instance per ClusterContext; all
/// registration and mutation happens on the driver thread.
///
/// Labels: a metric family (one name, one TYPE line) may have many children
/// distinguished by a label string rendered verbatim inside {...}, e.g.
/// RegisterCounter("shark_cache_hits_total", help, "node=\"3\"").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Renders one label pair with the value escaped per the exposition format
  /// (use for untrusted values like session names): Label("session", "a\"b")
  /// == "session=\"a\\\"b\"". The key is sanitized like a metric name.
  static std::string Label(const std::string& key, const std::string& value);

  Counter* RegisterCounter(const std::string& name, const std::string& help,
                           const std::string& labels = "");
  Gauge* RegisterGauge(const std::string& name, const std::string& help,
                       const std::string& labels = "");
  Gauge* RegisterCallbackGauge(const std::string& name, const std::string& help,
                               std::function<double()> fn,
                               const std::string& labels = "");
  HistogramMetric* RegisterHistogram(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels = "");

  /// Prometheus text exposition format: "# HELP"/"# TYPE" once per family
  /// (first registration wins), then one sample line per child, all in
  /// registration order. Deterministic given deterministic metric values.
  std::string TextExposition() const;

  /// Flat snapshot of every counter (name with labels appended -> value),
  /// in registration order. The EXPLAIN ANALYZE metrics delta diffs two of
  /// these.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;

  size_t size() const { return entries_.size(); }

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string name;    // family name
    std::string help;
    std::string labels;  // rendered inside {...}; empty = no labels
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  std::vector<Entry> entries_;
};

}  // namespace shark

#endif  // SHARK_COMMON_METRICS_H_
