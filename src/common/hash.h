#ifndef SHARK_COMMON_HASH_H_
#define SHARK_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace shark {

/// 64-bit FNV-1a. Used for shuffle partitioning and hash joins; stable across
/// runs and platforms, which keeps partition assignment deterministic (a
/// requirement for lineage-based recovery: a recomputed map task must send the
/// same records to the same reducers).
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashBytes(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

inline uint64_t HashInt64(int64_t v) {
  // Finalizer from MurmurHash3: good avalanche for sequential keys.
  uint64_t h = static_cast<uint64_t>(v);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashDouble(double v) {
  if (v == 0.0) v = 0.0;  // normalize -0.0
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashInt64(static_cast<int64_t>(bits));
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace shark

#endif  // SHARK_COMMON_HASH_H_
