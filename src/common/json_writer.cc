#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace shark {

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame{true, false, false});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame{false, false, false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!stack_.empty()) {
    Frame& f = stack_.back();
    if (f.has_value) out_ += ',';
    f.has_value = true;
    f.key_pending = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  return *this;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  Frame& f = stack_.back();
  if (f.key_pending) {
    f.key_pending = false;
    return;  // comma already handled by Key()
  }
  if (f.has_value) out_ += ',';
  f.has_value = true;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  // %.17g round-trips every double; trim it to the shortest representation
  // that still round-trips so the common cases stay readable.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::FixedDouble(double v, int precision) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view fragment) {
  BeforeValue();
  out_ += fragment;
  return *this;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace shark
