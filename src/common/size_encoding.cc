#include "common/size_encoding.h"

#include <cmath>

namespace shark {

namespace {
// base^254 = kMaxSize  =>  base = kMaxSize^(1/254) ~= 1.103.
const double kLogBase = std::log(static_cast<double>(SizeEncoding::kMaxSize)) / 254.0;
}  // namespace

uint8_t SizeEncoding::Encode(uint64_t bytes) {
  if (bytes == 0) return 0;
  if (bytes >= kMaxSize) return 255;
  // code-1 = ln(bytes)/kLogBase, rounded to the nearest code.
  double code = std::log(static_cast<double>(bytes)) / kLogBase + 1.0;
  long rounded = std::lround(code);
  if (rounded < 1) rounded = 1;
  if (rounded > 255) rounded = 255;
  return static_cast<uint8_t>(rounded);
}

uint64_t SizeEncoding::Decode(uint8_t code) {
  if (code == 0) return 0;
  double v = std::exp(kLogBase * static_cast<double>(code - 1));
  return static_cast<uint64_t>(std::llround(v));
}

}  // namespace shark
