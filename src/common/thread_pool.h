#ifndef SHARK_COMMON_THREAD_POOL_H_
#define SHARK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shark {

class TaskBatch;

/// A work-stealing pool of host worker threads. Jobs are submitted through a
/// TaskBatch and round-robined across per-worker deques; an idle worker first
/// drains its own deque (oldest first), then steals the oldest job from the
/// most loaded peer. A thread blocked in TaskBatch::Wait helps by claiming its
/// target job (or any other pending job) itself, so the waiting thread is a
/// full-fledged extra worker rather than a spectator.
///
/// All coordination happens under one mutex: job bodies run outside the lock,
/// and the per-job state machine (pending -> running -> done/cancelled) is
/// only ever read or written with the lock held. That keeps the pool clean
/// under ThreadSanitizer by construction — there are no atomics whose
/// orderings need separate justification.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (>= 1).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Jobs executed per worker; the extra trailing slot counts jobs run by
  /// threads helping from TaskBatch::Wait (introspection for tests).
  std::vector<uint64_t> RunCounts() const;

  /// Jobs executed by a thread other than the worker whose deque they were
  /// queued on (includes helper-thread claims).
  uint64_t Steals() const;

 private:
  friend class TaskBatch;

  struct Job {
    std::function<void()> fn;
    TaskBatch* batch;
    size_t index;    // index within the batch
    int home_queue;  // deque the job was submitted to
  };

  void WorkerLoop(int worker);
  /// Pops the next runnable job for `worker` (-1 = helping external thread).
  /// Marks it running. Caller must hold mu_. Returns nullptr if none pending.
  Job* ClaimJobLocked(int worker);
  /// Runs a claimed job outside the lock, then records completion under it.
  void RunClaimedJob(Job* job, std::unique_lock<std::mutex>* lock, int worker);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;       // workers wait for work/shutdown
  bool shutdown_ = false;
  std::vector<std::deque<Job*>> queues_;  // per worker; Jobs owned by batches
  size_t next_queue_ = 0;                 // round-robin submission cursor
  std::vector<uint64_t> run_counts_;      // per worker + 1 helper slot
  uint64_t steals_ = 0;
  std::vector<std::thread> workers_;
};

/// One stage's worth of jobs on a ThreadPool. With a null pool the batch
/// degrades to lazy inline execution inside Wait — the serial reference path
/// uses exactly the same call sequence as the parallel one.
///
/// The destructor cancels whatever has not started and drains running jobs,
/// so aborting a stage mid-flight can never leave a worker writing into
/// freed caller state. Job bodies must not call back into their own batch.
class TaskBatch {
 public:
  explicit TaskBatch(ThreadPool* pool) : pool_(pool) {}
  ~TaskBatch() { CancelAndDrain(); }

  TaskBatch(const TaskBatch&) = delete;
  TaskBatch& operator=(const TaskBatch&) = delete;

  /// Enqueues fn; returns the job's index within this batch.
  size_t Submit(std::function<void()> fn);

  /// Blocks until job `index` finished, running pending jobs (its target
  /// first) while it waits. Rethrows the job's exception, if any, on the
  /// calling thread. Returns false if the job was cancelled before running.
  bool Wait(size_t index);

  /// Cancels jobs that have not started and waits out the running ones.
  void CancelAndDrain();

  /// Whether the job ran to completion (false while pending/running, or if
  /// cancelled).
  bool Ran(size_t index) const;

 private:
  friend class ThreadPool;

  enum class JobState : uint8_t { kPending, kRunning, kDone, kCancelled };

  bool AnyRunningLocked() const;

  ThreadPool* pool_;
  std::deque<ThreadPool::Job> jobs_;  // deque: stable element addresses
  std::vector<JobState> states_;
  std::vector<std::exception_ptr> errors_;
  std::condition_variable done_cv_;  // completion signals for Wait/drain
};

}  // namespace shark

#endif  // SHARK_COMMON_THREAD_POOL_H_
