#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace shark {

namespace {

/// Default level, overridable at process startup via the SHARK_LOG_LEVEL
/// environment variable (name or number; see ParseLogLevel). Unparseable
/// values are ignored and the default stands.
int InitialLogLevel() {
  const char* env = std::getenv("SHARK_LOG_LEVEL");
  LogLevel level = LogLevel::kWarn;
  if (env != nullptr) ParseLogLevel(env, &level);
  return static_cast<int>(level);
}

std::atomic<int> g_log_level{InitialLogLevel()};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *out = LogLevel::kOff;
  } else if (lower.size() == 1 && lower[0] >= '0' && lower[0] <= '4') {
    *out = static_cast<LogLevel>(lower[0] - '0');
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
  (void)level_;
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << condition
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace shark
