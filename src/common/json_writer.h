#ifndef SHARK_COMMON_JSON_WRITER_H_
#define SHARK_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shark {

/// Append-only JSON emitter shared by every machine-readable export in the
/// tree (chrome traces, bench BENCH_*.json lines, the cluster-metrics
/// timeline). Centralizes the two things ad-hoc emitters keep getting wrong:
/// string escaping (quotes, backslashes, control characters) and non-finite
/// doubles (JSON has no NaN/Inf — they are emitted as null).
///
/// Commas are inserted automatically; values written at the top level (no
/// open object/array) concatenate without separators, which is what the
/// one-line BENCH_ emitters want. Output is deterministic: doubles render
/// through a fixed "%.17g"-style shortest-round-trip format, never
/// locale-dependent.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by exactly one value (or
  /// BeginObject/BeginArray).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  /// Non-finite values emit null.
  JsonWriter& Double(double v);
  /// Fixed-precision double ("%.*f"); non-finite values emit null.
  JsonWriter& FixedDouble(double v, int precision);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// Pre-rendered JSON fragment, inserted verbatim (caller guarantees
  /// validity). Participates in comma handling like any other value.
  JsonWriter& Raw(std::string_view fragment);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// JSON string-escapes `s` (no surrounding quotes): quote, backslash,
  /// and control characters below 0x20 (\n, \t, \r named; the rest \u00xx).
  static std::string Escape(std::string_view s);

 private:
  void BeforeValue();

  struct Frame {
    bool is_object = false;
    bool has_value = false;    // a comma is due before the next member
    bool key_pending = false;  // Key() written, value expected
  };

  std::string out_;
  std::vector<Frame> stack_;
};

}  // namespace shark

#endif  // SHARK_COMMON_JSON_WRITER_H_
