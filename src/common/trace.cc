#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace shark {

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Seconds with microsecond resolution — enough for virtual task timings,
/// and deterministic (the inputs are bit-identical across runs).
std::string Sec(double v) { return Fmt("%.6f", v); }

/// The shared escaper (common/json_writer.h), kept under the old local name.
std::string JsonEscape(const std::string& s) { return JsonWriter::Escape(s); }

/// Field-wise sum; kept local so shark_common stays link-self-contained
/// (TaskWork::Add lives in shark_sim).
void AddWork(TaskWork* acc, const TaskWork& w) {
  acc->disk_read_bytes += w.disk_read_bytes;
  acc->disk_seeks += w.disk_seeks;
  acc->net_read_bytes += w.net_read_bytes;
  acc->mem_read_bytes += w.mem_read_bytes;
  acc->text_deser_bytes += w.text_deser_bytes;
  acc->binary_deser_bytes += w.binary_deser_bytes;
  acc->ser_bytes += w.ser_bytes;
  acc->rows_processed += w.rows_processed;
  acc->hash_records += w.hash_records;
  acc->sort_records += w.sort_records;
  acc->disk_write_bytes += w.disk_write_bytes;
  acc->dfs_write_bytes += w.dfs_write_bytes;
  acc->flops += w.flops;
  acc->cpu_seconds += w.cpu_seconds;
}

}  // namespace

std::string WorkSummary(const TaskWork& w) {
  std::string out;
  auto add = [&](const char* name, uint64_t v, bool as_bytes) {
    if (v == 0) return;
    if (!out.empty()) out += " ";
    out += name;
    out += "=";
    out += as_bytes ? FormatBytes(v) : std::to_string(v);
  };
  add("disk_read", w.disk_read_bytes, true);
  add("seeks", w.disk_seeks, false);
  add("net_read", w.net_read_bytes, true);
  add("mem_read", w.mem_read_bytes, true);
  add("text_deser", w.text_deser_bytes, true);
  add("bin_deser", w.binary_deser_bytes, true);
  add("ser", w.ser_bytes, true);
  add("rows", w.rows_processed, false);
  add("hash", w.hash_records, false);
  add("sort", w.sort_records, false);
  add("disk_write", w.disk_write_bytes, true);
  add("dfs_write", w.dfs_write_bytes, true);
  add("flops", w.flops, false);
  if (w.cpu_seconds > 0.0) {
    if (!out.empty()) out += " ";
    out += "cpu=" + Sec(w.cpu_seconds) + "s";
  }
  return out.empty() ? "none" : out;
}

const char* TaskLocalityName(TaskLocality locality) {
  switch (locality) {
    case TaskLocality::kPreferred:
      return "preferred";
    case TaskLocality::kRemote:
      return "remote";
    case TaskLocality::kAny:
      return "any";
  }
  return "?";
}

const char* TaskEndName(TaskEnd end) {
  switch (end) {
    case TaskEnd::kCommitted:
      return "committed";
    case TaskEnd::kSuperseded:
      return "superseded";
    case TaskEnd::kNodeDeath:
      return "node-death";
    case TaskEnd::kMissingInput:
      return "missing-input";
  }
  return "?";
}

ShuffleSizeSummary SummarizeBucketBytes(const std::vector<uint64_t>& bytes) {
  ShuffleSizeSummary s;
  s.buckets = static_cast<int>(bytes.size());
  if (bytes.empty()) return s;
  std::vector<uint64_t> sorted = bytes;
  std::sort(sorted.begin(), sorted.end());
  s.min_bytes = sorted.front();
  s.max_bytes = sorted.back();
  s.median_bytes = sorted[sorted.size() / 2];
  for (uint64_t b : sorted) s.total_bytes += b;
  double mean =
      static_cast<double>(s.total_bytes) / static_cast<double>(sorted.size());
  s.skew = mean > 0.0 ? static_cast<double>(s.max_bytes) / mean : 0.0;
  return s;
}

void CacheCounters::Add(const CacheCounters& other) {
  hit_blocks += other.hit_blocks;
  hit_bytes += other.hit_bytes;
  miss_blocks += other.miss_blocks;
  miss_bytes += other.miss_bytes;
}

int StageTrace::committed_tasks() const {
  int n = 0;
  for (const TaskTrace& t : tasks) n += t.end == TaskEnd::kCommitted ? 1 : 0;
  return n;
}

int StageTrace::speculative_tasks() const {
  int n = 0;
  for (const TaskTrace& t : tasks) n += t.speculative ? 1 : 0;
  return n;
}

int StageTrace::failed_tasks() const {
  int n = 0;
  for (const TaskTrace& t : tasks) {
    if (t.end == TaskEnd::kNodeDeath || t.end == TaskEnd::kMissingInput) ++n;
  }
  return n;
}

uint64_t StageTrace::rows_out() const {
  uint64_t n = 0;
  for (const TaskTrace& t : tasks) {
    if (t.end == TaskEnd::kCommitted) n += t.rows_out;
  }
  return n;
}

uint64_t StageTrace::bytes_out() const {
  uint64_t n = 0;
  for (const TaskTrace& t : tasks) {
    if (t.end == TaskEnd::kCommitted) n += t.bytes_out;
  }
  return n;
}

TaskWork StageTrace::total_work() const {
  TaskWork w;
  for (const TaskTrace& t : tasks) AddWork(&w, t.work);
  return w;
}

int StageTrace::spilled_tasks() const {
  int n = 0;
  for (const TaskTrace& t : tasks) {
    if (t.end == TaskEnd::kCommitted && t.spill_bytes > 0) ++n;
  }
  return n;
}

uint64_t StageTrace::spill_bytes() const {
  uint64_t n = 0;
  for (const TaskTrace& t : tasks) {
    if (t.end == TaskEnd::kCommitted) n += t.spill_bytes;
  }
  return n;
}

uint64_t StageTrace::spill_partitions() const {
  uint64_t n = 0;
  for (const TaskTrace& t : tasks) {
    if (t.end == TaskEnd::kCommitted) n += t.spill_partitions;
  }
  return n;
}

int StageTrace::disk_served_outputs() const {
  int n = 0;
  for (const TaskTrace& t : tasks) {
    if (t.end == TaskEnd::kCommitted && t.output_on_disk) ++n;
  }
  return n;
}

const StageTrace* QueryProfile::FindStage(const std::string& label_part) const {
  for (const StageTrace& s : stages) {
    if (s.label.find(label_part) != std::string::npos) return &s;
  }
  return nullptr;
}

std::map<int, CacheCounters> QueryProfile::CacheTotals() const {
  std::map<int, CacheCounters> totals;
  for (const StageTrace& s : stages) {
    for (const auto& [rdd, c] : s.cache_by_rdd) totals[rdd].Add(c);
  }
  return totals;
}

std::string QueryProfile::ToString() const {
  std::string out;
  out += "query profile: " + Sec(start_time) + "s .. " + Sec(end_time) +
         "s (" + Sec(duration()) + "s), " + std::to_string(stages.size()) +
         " stages, " + std::to_string(result_rows) + " result rows" +
         (query_id.empty() ? "" : " id=" + query_id) + "\n";
  for (const StageTrace& s : stages) {
    out += "  stage " + std::to_string(s.id);
    if (s.parent >= 0) out += " (recovery under " + std::to_string(s.parent) + ")";
    out += " [" + s.label + "]";
    if (s.is_map_stage) out += " shuffle=" + std::to_string(s.shuffle_id);
    out += " " + Sec(s.start_time) + "s .. " + Sec(s.end_time) + "s\n";
    out += "    tasks=" + std::to_string(s.tasks.size()) +
           " committed=" + std::to_string(s.committed_tasks()) +
           " speculative=" + std::to_string(s.speculative_tasks()) +
           " failed=" + std::to_string(s.failed_tasks()) +
           " rows_out=" + std::to_string(s.rows_out()) +
           " bytes_out=" + FormatBytes(s.bytes_out()) + "\n";
    if (s.shuffle.buckets > 0) {
      out += "    shuffle buckets=" + std::to_string(s.shuffle.buckets) +
             " min=" + FormatBytes(s.shuffle.min_bytes) +
             " median=" + FormatBytes(s.shuffle.median_bytes) +
             " max=" + FormatBytes(s.shuffle.max_bytes) +
             " total=" + FormatBytes(s.shuffle.total_bytes) + " skew=" +
             Fmt("%.2f", s.shuffle.skew) + "\n";
    }
    for (const auto& [rdd, c] : s.cache_by_rdd) {
      auto it = rdd_names.find(rdd);
      std::string name =
          it != rdd_names.end() ? it->second : "rdd " + std::to_string(rdd);
      out += "    cache[" + name + "] hit " + FormatBytes(c.hit_bytes) + "/" +
             std::to_string(c.hit_blocks) + " blocks, miss " +
             FormatBytes(c.miss_bytes) + "/" + std::to_string(c.miss_blocks) +
             " blocks\n";
    }
    out += "    work: " + WorkSummary(s.total_work()) + "\n";
    if (s.spilled_tasks() > 0 || s.disk_served_outputs() > 0) {
      out += "    memory:";
      if (s.spilled_tasks() > 0) {
        out += " spilled=" + FormatBytes(s.spill_bytes()) + " in " +
               std::to_string(s.spill_partitions()) + " partitions across " +
               std::to_string(s.spilled_tasks()) + " tasks";
      }
      if (s.disk_served_outputs() > 0) {
        if (s.spilled_tasks() > 0) out += ",";
        out += " disk-served map outputs=" +
               std::to_string(s.disk_served_outputs()) + "/" +
               std::to_string(s.committed_tasks());
      }
      out += "\n";
    }
    for (const TaskTrace& t : s.tasks) {
      out += "    task " + std::to_string(t.task) + "/p" +
             std::to_string(t.partition) + " attempt=" +
             std::to_string(t.attempt) + (t.speculative ? " spec" : "") +
             " node=" + std::to_string(t.node) + " core=" +
             std::to_string(t.core) + " " + TaskLocalityName(t.locality) +
             " queue=" + Sec(t.queue_time) + " launch=" + Sec(t.launch_time) +
             " run=" + Sec(t.run_start) + " finish=" + Sec(t.finish_time) +
             " rows=" + std::to_string(t.rows_out) + " " +
             TaskEndName(t.end) + "\n";
    }
    for (const std::string& e : s.events) out += "    event: " + e + "\n";
  }
  return out;
}

std::string QueryProfile::ToChromeTrace() const {
  // Timestamps are virtual microseconds; pid 0 is the driver (stage spans
  // and instant events), pid node+1 is a simulated node with one tid per
  // core. "X" = complete event, "i" = instant, "M" = metadata.
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  auto us = [](double sec) { return Fmt("%.3f", sec * 1e6); };

  std::map<int, int> node_cores;  // node -> max core seen
  for (const StageTrace& s : stages) {
    for (const TaskTrace& t : s.tasks) {
      if (t.node >= 0) {
        auto [it, inserted] = node_cores.emplace(t.node, t.core);
        if (!inserted) it->second = std::max(it->second, t.core);
      }
    }
  }
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"driver\"}}");
  if (!query_id.empty()) {
    emit("{\"name\":\"query_id\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"query_id\":\"" + JsonEscape(query_id) + "\"}}");
  }
  for (const auto& [node, max_core] : node_cores) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(node + 1) + ",\"tid\":0,\"args\":{\"name\":\"node " +
         std::to_string(node) + "\"}}");
    for (int core = 0; core <= max_core; ++core) {
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(node + 1) + ",\"tid\":" + std::to_string(core) +
           ",\"args\":{\"name\":\"core " + std::to_string(core) + "\"}}");
    }
  }

  // Depth of each stage in the recovery-nesting tree -> driver-row tid.
  std::map<int, int> depth;
  for (const StageTrace& s : stages) {
    depth[s.id] = s.parent >= 0 ? depth[s.parent] + 1 : 0;
  }
  for (const StageTrace& s : stages) {
    emit("{\"name\":\"" + JsonEscape(s.label) + "\",\"cat\":\"stage\","
         "\"ph\":\"X\",\"ts\":" + us(s.start_time) + ",\"dur\":" +
         us(s.end_time - s.start_time) + ",\"pid\":0,\"tid\":" +
         std::to_string(depth[s.id]) + ",\"args\":{\"stage\":" +
         std::to_string(s.id) + ",\"tasks\":" + std::to_string(s.tasks.size()) +
         ",\"rows_out\":" + std::to_string(s.rows_out()) +
         (s.is_map_stage ? ",\"shuffle\":" + std::to_string(s.shuffle_id) : "") +
         "}}");
    for (const TaskTrace& t : s.tasks) {
      if (t.node < 0) continue;
      emit("{\"name\":\"" + JsonEscape(s.label) + "#" +
           std::to_string(t.task) + "\",\"cat\":\"task\",\"ph\":\"X\","
           "\"ts\":" + us(t.run_start) + ",\"dur\":" +
           us(t.finish_time - t.run_start) + ",\"pid\":" +
           std::to_string(t.node + 1) + ",\"tid\":" + std::to_string(t.core) +
           ",\"args\":{\"stage\":" + std::to_string(s.id) + ",\"partition\":" +
           std::to_string(t.partition) + ",\"attempt\":" +
           std::to_string(t.attempt) + ",\"speculative\":" +
           (t.speculative ? "true" : "false") + ",\"locality\":\"" +
           TaskLocalityName(t.locality) + "\",\"end\":\"" + TaskEndName(t.end) +
           "\",\"rows\":" + std::to_string(t.rows_out) + ",\"queue_us\":" +
           us(t.launch_time - t.queue_time) + "}}");
    }
    for (const std::string& e : s.events) {
      // Events are prefixed "t=<seconds> "; recover the timestamp for the
      // instant marker (defaulting to the stage start) and drop the prefix
      // from the displayed name.
      double ts = s.start_time;
      std::string name = e;
      if (e.rfind("t=", 0) == 0) {
        ts = std::atof(e.c_str() + 2);
        size_t space = e.find(' ');
        if (space != std::string::npos) name = e.substr(space + 1);
      }
      emit("{\"name\":\"" + JsonEscape(name) + "\",\"cat\":\"event\","
           "\"ph\":\"i\",\"s\":\"g\",\"ts\":" + us(ts) +
           ",\"pid\":0,\"tid\":" + std::to_string(depth[s.id]) + "}");
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceCollector::BeginQuery(double now) {
  if (profile_ != nullptr) return false;  // nested query shares the profile
  profile_ = std::make_shared<QueryProfile>();
  profile_->query_id = query_id_;
  profile_->start_time = now;
  open_.clear();
  last_ended_ = -1;
  return true;
}

void TraceCollector::set_query_id(const std::string& id) {
  query_id_ = id;
  if (profile_ != nullptr) profile_->query_id = id;
}

std::shared_ptr<QueryProfile> TraceCollector::EndQuery(double now) {
  if (profile_ == nullptr) return nullptr;
  profile_->end_time = now;
  std::shared_ptr<QueryProfile> out = std::move(profile_);
  profile_ = nullptr;
  open_.clear();
  last_ended_ = -1;
  return out;
}

int TraceCollector::BeginStage(const std::string& label, bool is_map_stage,
                               int shuffle_id, double now) {
  if (profile_ == nullptr) return -1;
  StageTrace s;
  s.id = static_cast<int>(profile_->stages.size());
  s.parent = open_.empty() ? -1 : open_.back();
  s.label = label;
  s.is_map_stage = is_map_stage;
  s.shuffle_id = shuffle_id;
  s.start_time = now;
  s.end_time = now;
  profile_->stages.push_back(std::move(s));
  open_.push_back(profile_->stages.back().id);
  return profile_->stages.back().id;
}

void TraceCollector::EndStage(int stage_id, double now) {
  if (profile_ == nullptr || stage_id < 0) return;
  profile_->stages[static_cast<size_t>(stage_id)].end_time = now;
  // Recovery sub-stages close strictly inside their parent, so the open
  // stage being ended is always the innermost one.
  if (!open_.empty() && open_.back() == stage_id) open_.pop_back();
  last_ended_ = stage_id;
}

StageTrace* TraceCollector::stage(int stage_id) {
  if (profile_ == nullptr || stage_id < 0 ||
      static_cast<size_t>(stage_id) >= profile_->stages.size()) {
    return nullptr;
  }
  return &profile_->stages[static_cast<size_t>(stage_id)];
}

}  // namespace shark
