#ifndef SHARK_COMMON_STRING_UTIL_H_
#define SHARK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shark {

/// Splits `s` on `delim`; keeps empty fields (CSV-style semantics).
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII lower-casing (SQL keywords / identifiers are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Parses a full string as int64/double; returns false on trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

/// Human-readable byte count, e.g. "1.5 GB".
std::string FormatBytes(uint64_t bytes);

/// Fixed-precision double formatting (printf "%.*f").
std::string FormatDouble(double v, int precision);

}  // namespace shark

#endif  // SHARK_COMMON_STRING_UTIL_H_
