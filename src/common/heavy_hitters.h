#ifndef SHARK_COMMON_HEAVY_HITTERS_H_
#define SHARK_COMMON_HEAVY_HITTERS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace shark {

/// SpaceSaving heavy-hitter sketch (Metwally et al.) used as a pluggable PDE
/// statistic (§3.1: "lists of heavy hitters, i.e. items that occur frequently
/// in the dataset"). Tracks at most `capacity` keys; any key with true
/// frequency > N/capacity is guaranteed to be present, and reported counts
/// overestimate by at most the recorded `error` term.
class HeavyHitters {
 public:
  struct Entry {
    uint64_t key;
    uint64_t count;  // upper bound on true frequency
    uint64_t error;  // max overestimation
  };

  explicit HeavyHitters(size_t capacity = 64);

  void Add(uint64_t key, uint64_t weight = 1);

  /// Merges another sketch (counts add; errors add conservatively).
  void Merge(const HeavyHitters& other);

  /// Entries with estimated frequency >= threshold, sorted descending.
  std::vector<Entry> TopK(size_t k) const;

  /// Guaranteed-frequency lower bound for `key` (0 if not tracked).
  uint64_t LowerBound(uint64_t key) const;

  uint64_t total_count() const { return total_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return counts_.size(); }

 private:
  void EvictAndInsert(uint64_t key, uint64_t weight);

  size_t capacity_;
  uint64_t total_ = 0;
  // key -> (count, error)
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> counts_;
};

}  // namespace shark

#endif  // SHARK_COMMON_HEAVY_HITTERS_H_
