#ifndef SHARK_COMMON_RANDOM_H_
#define SHARK_COMMON_RANDOM_H_

#include <cstdint>

namespace shark {

/// Deterministic, fast pseudo-random generator (xorshift128+). Every workload
/// generator and the cluster simulator take an explicit seed so that test and
/// benchmark runs are reproducible bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    // SplitMix64 seeding to avoid weak low-entropy states.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 0x9e3779b97f4a7c15ULL;
  }

  uint64_t NextUint64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return NextUint64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal via Box-Muller (one value per call; simple and adequate).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-12) u1 = 1e-12;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-like skewed value in [0, n): rank drawn with probability ~ 1/rank^s
  /// using inverse-CDF approximation; adequate for skew-injection workloads.
  uint64_t Zipf(uint64_t n, double s) {
    // Approximate inverse CDF of a Zipf(s) distribution over [1, n].
    double u = NextDouble();
    if (s == 1.0) s = 1.0000001;
    double t = (__builtin_pow(static_cast<double>(n), 1.0 - s) - 1.0) * u + 1.0;
    double rank = __builtin_pow(t, 1.0 / (1.0 - s));
    uint64_t r = static_cast<uint64_t>(rank);
    if (r >= n) r = n - 1;
    return r;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace shark

#endif  // SHARK_COMMON_RANDOM_H_
