#ifndef SHARK_COMMON_SIZE_ENCODING_H_
#define SHARK_COMMON_SIZE_ENCODING_H_

#include <cstdint>

namespace shark {

/// Lossy logarithmic encoding of byte sizes into a single byte, as used by
/// Shark's Partial DAG Execution statistics (§3.1): each map task reports its
/// per-reducer output partition sizes to the master, and to bound the report
/// to 1–2 KB per task the sizes are log-encoded with at most 10% relative
/// error for values up to 32 GB.
///
/// Encoding: code 0 represents 0 bytes; code k (1..255) represents
/// round(base^(k-1)) bytes with base chosen so that code 255 = 32 GB.
/// Consecutive codes then differ by a factor of base ≈ 1.1, i.e. the
/// round-to-nearest-code relative error is <= (base-1)/2 + rounding < 10%.
class SizeEncoding {
 public:
  /// Encodes `bytes` to the nearest 1-byte code.
  static uint8_t Encode(uint64_t bytes);

  /// Decodes a code back to an approximate byte count.
  static uint64_t Decode(uint8_t code);

  /// Maximum representable size (32 GB).
  static constexpr uint64_t kMaxSize = 32ULL * 1024 * 1024 * 1024;
};

}  // namespace shark

#endif  // SHARK_COMMON_SIZE_ENCODING_H_
