#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace shark {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace shark
