#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace shark {

namespace {

/// Prometheus sample values: integers render without a decimal point,
/// everything else with enough digits to round-trip.
std::string SampleValue(double v) {
  if (!std::isfinite(v)) return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "summary";
  }
}

}  // namespace

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          const std::string& labels) {
  Entry e;
  e.kind = Kind::kCounter;
  e.name = name;
  e.help = help;
  e.labels = labels;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels) {
  Entry e;
  e.kind = Kind::kGauge;
  e.name = name;
  e.help = help;
  e.labels = labels;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                              const std::string& help,
                                              std::function<double()> fn,
                                              const std::string& labels) {
  Gauge* g = RegisterGauge(name, help, labels);
  g->SetCallback(std::move(fn));
  return g;
}

HistogramMetric* MetricsRegistry::RegisterHistogram(const std::string& name,
                                                    const std::string& help,
                                                    const std::string& labels) {
  Entry e;
  e.kind = Kind::kHistogram;
  e.name = name;
  e.help = help;
  e.labels = labels;
  e.histogram = std::make_unique<HistogramMetric>();
  HistogramMetric* out = e.histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

std::string MetricsRegistry::TextExposition() const {
  std::string out;
  std::set<std::string> headered;
  for (const Entry& e : entries_) {
    if (headered.insert(e.name).second) {
      if (!e.help.empty()) out += "# HELP " + e.name + " " + e.help + "\n";
      out += "# TYPE " + e.name + " " +
             KindName(static_cast<int>(e.kind)) + "\n";
    }
    std::string series = e.name;
    if (!e.labels.empty()) series += "{" + e.labels + "}";
    switch (e.kind) {
      case Kind::kCounter:
        out += series + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += series + " " + SampleValue(e.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const ApproxHistogram& h = e.histogram->histogram();
        const char* sep = e.labels.empty() ? "" : ",";
        std::string base = e.labels;
        for (double q : {0.5, 0.95, 0.99}) {
          char qbuf[16];
          std::snprintf(qbuf, sizeof(qbuf), "%.2f", q);
          double v = h.total_count() > 0 ? h.EstimateQuantile(q) : 0.0;
          out += e.name + "{" + base + sep + "quantile=\"" + qbuf + "\"} " +
                 SampleValue(v) + "\n";
        }
        out += e.name + "_count" + (base.empty() ? "" : "{" + base + "}") +
               " " + std::to_string(h.total_count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::kCounter) continue;
    std::string series = e.name;
    if (!e.labels.empty()) series += "{" + e.labels + "}";
    out.emplace_back(std::move(series), e.counter->value());
  }
  return out;
}

}  // namespace shark
