#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace shark {

namespace {

/// Prometheus sample values: integers render without a decimal point,
/// everything else with enough digits to round-trip.
std::string SampleValue(double v) {
  if (!std::isfinite(v)) return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "summary";
  }
}

}  // namespace

std::string PrometheusEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string SanitizeMetricName(const std::string& name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  auto valid = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':') {
      return true;
    }
    return !first && c >= '0' && c <= '9';
  };
  if (!valid(name[0], /*first=*/true) && name[0] >= '0' && name[0] <= '9') {
    out += '_';
  }
  for (size_t i = 0; i < name.size(); ++i) {
    out += valid(name[i], /*first=*/out.empty()) ? name[i] : '_';
  }
  return out;
}

std::string MetricsRegistry::Label(const std::string& key,
                                   const std::string& value) {
  return SanitizeMetricName(key) + "=\"" + PrometheusEscape(value) + "\"";
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          const std::string& labels) {
  Entry e;
  e.kind = Kind::kCounter;
  e.name = SanitizeMetricName(name);
  e.help = help;
  e.labels = labels;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels) {
  Entry e;
  e.kind = Kind::kGauge;
  e.name = SanitizeMetricName(name);
  e.help = help;
  e.labels = labels;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                              const std::string& help,
                                              std::function<double()> fn,
                                              const std::string& labels) {
  Gauge* g = RegisterGauge(name, help, labels);
  g->SetCallback(std::move(fn));
  return g;
}

HistogramMetric* MetricsRegistry::RegisterHistogram(const std::string& name,
                                                    const std::string& help,
                                                    const std::string& labels) {
  Entry e;
  e.kind = Kind::kHistogram;
  e.name = SanitizeMetricName(name);
  e.help = help;
  e.labels = labels;
  e.histogram = std::make_unique<HistogramMetric>();
  HistogramMetric* out = e.histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

std::string MetricsRegistry::TextExposition() const {
  // Families render contiguously (all children under one HELP/TYPE header)
  // in first-registration order — lazily registered children (e.g.
  // per-session series) would otherwise scatter a family across the output.
  std::string out;
  std::set<std::string> headered;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (headered.count(entries_[i].name)) continue;
    for (size_t j = i; j < entries_.size(); ++j) {
      if (entries_[j].name != entries_[i].name) continue;
      const Entry& e = entries_[j];
      if (headered.insert(e.name).second) {
        // HELP text escapes backslash and newline (but not quotes) per the
        // exposition format.
        std::string help;
        help.reserve(e.help.size());
        for (char c : e.help) {
          if (c == '\\') {
            help += "\\\\";
          } else if (c == '\n') {
            help += "\\n";
          } else {
            help += c;
          }
        }
        if (!help.empty()) out += "# HELP " + e.name + " " + help + "\n";
        out += "# TYPE " + e.name + " " +
               KindName(static_cast<int>(e.kind)) + "\n";
      }
      std::string series = e.name;
      if (!e.labels.empty()) series += "{" + e.labels + "}";
      switch (e.kind) {
        case Kind::kCounter:
          out += series + " " + std::to_string(e.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += series + " " + SampleValue(e.gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const ApproxHistogram& h = e.histogram->histogram();
          const char* sep = e.labels.empty() ? "" : ",";
          std::string base = e.labels;
          for (double q : {0.5, 0.95, 0.99}) {
            char qbuf[16];
            std::snprintf(qbuf, sizeof(qbuf), "%.2f", q);
            double v = h.total_count() > 0 ? h.EstimateQuantile(q) : 0.0;
            out += e.name + "{" + base + sep + "quantile=\"" + qbuf + "\"} " +
                   SampleValue(v) + "\n";
          }
          out += e.name + "_count" + (base.empty() ? "" : "{" + base + "}") +
                 " " + std::to_string(h.total_count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::kCounter) continue;
    std::string series = e.name;
    if (!e.labels.empty()) series += "{" + e.labels + "}";
    out.emplace_back(std::move(series), e.counter->value());
  }
  return out;
}

}  // namespace shark
