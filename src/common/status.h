#ifndef SHARK_COMMON_STATUS_H_
#define SHARK_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace shark {

/// Error codes used across the library. Follows the RocksDB/Arrow convention of
/// returning a Status (or Result<T>) instead of throwing exceptions across
/// module boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kAnalysisError,
  kExecutionError,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
};

/// A lightweight success/error result. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a (non-OK) Status keeps call sites
  /// terse: `return value;` or `return Status::ParseError(...)`.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(storage_);
  }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace shark

/// Propagates a non-OK Status from an expression producing a Status.
#define SHARK_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::shark::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates an expression producing Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define SHARK_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value();

#define SHARK_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define SHARK_ASSIGN_OR_RETURN_CONCAT(x, y) SHARK_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define SHARK_ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  SHARK_ASSIGN_OR_RETURN_IMPL(                                                \
      SHARK_ASSIGN_OR_RETURN_CONCAT(_shark_result_, __LINE__), lhs, rexpr)

#endif  // SHARK_COMMON_STATUS_H_
