#ifndef SHARK_COMMON_HISTOGRAM_H_
#define SHARK_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shark {

/// Fixed-budget approximate histogram over doubles, used as a pluggable PDE
/// statistic (§3.1: "approximate histograms, which can be used to estimate
/// partitions' data distributions").
///
/// Implementation: streaming equi-width histogram with geometric domain
/// expansion. The first `2*bucket_count` samples are buffered exactly; once
/// the buffer overflows, the range [min,max] seen so far is split into
/// `bucket_count` buckets and later out-of-range values widen the range by
/// doubling bucket width (merging adjacent buckets), so memory stays O(k).
class ApproxHistogram {
 public:
  explicit ApproxHistogram(int bucket_count = 64);

  void Add(double v);

  /// Merges another histogram into this one (used when the master aggregates
  /// per-task statistics).
  void Merge(const ApproxHistogram& other);

  uint64_t total_count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Estimated number of samples <= v.
  double EstimateRank(double v) const;

  /// Estimated q-quantile (q in [0,1]).
  double EstimateQuantile(double q) const;

  /// Estimated count of samples in [lo, hi].
  double EstimateRangeCount(double lo, double hi) const;

  int bucket_count() const { return static_cast<int>(buckets_.size()); }

 private:
  void Build();
  void AddToBuckets(double v, uint64_t weight);
  void ExpandToInclude(double v);
  double BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  int target_buckets_;
  bool built_ = false;
  std::vector<double> buffer_;
  std::vector<uint64_t> buckets_;
  double lo_ = 0.0;
  double width_ = 1.0;
  double min_;
  double max_;
  uint64_t count_ = 0;
};

}  // namespace shark

#endif  // SHARK_COMMON_HISTOGRAM_H_
