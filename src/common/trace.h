#ifndef SHARK_COMMON_TRACE_H_
#define SHARK_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace shark {

/// Locality class of one task launch, decided when the scheduler picks the
/// (node, core) placement.
enum class TaskLocality : uint8_t {
  kPreferred,  // ran on one of its preferred nodes (cache / DFS replica)
  kRemote,     // had a preference but ran elsewhere
  kAny         // no locality preference
};

/// How one task attempt ended.
enum class TaskEnd : uint8_t {
  kCommitted,     // output accepted
  kSuperseded,    // finished after a duplicate already committed
  kNodeDeath,     // aborted when its node died
  kMissingInput,  // result discarded; re-run after lineage recovery
};

const char* TaskLocalityName(TaskLocality locality);
const char* TaskEndName(TaskEnd end);

/// Compact "key=value" rendering of the nonzero counters of a TaskWork.
std::string WorkSummary(const TaskWork& work);

/// One task attempt: the full virtual-time lifecycle (queue -> launch ->
/// run -> finish), its placement, and the cost-model work breakdown the
/// simulator charged it.
struct TaskTrace {
  int task = 0;       // index within the stage's task set
  int partition = 0;  // partition it computed
  int attempt = 0;    // prior retries at launch time
  bool speculative = false;
  int node = -1;
  int core = -1;
  double queue_time = 0.0;   // entered the pending queue
  double launch_time = 0.0;  // core assignment decision
  double run_start = 0.0;    // after heartbeat quantization
  double finish_time = 0.0;  // completion, or abort time for kNodeDeath
  TaskLocality locality = TaskLocality::kAny;
  TaskEnd end = TaskEnd::kCommitted;
  uint64_t rows_out = 0;
  uint64_t bytes_out = 0;
  TaskWork work;  // placement-resolved counters charged at launch
  /// Operator working-set bytes this attempt spilled to simulated local
  /// disk (external hash aggregation / sort-merge), and how many grace-hash
  /// partitions or sorted runs they were split into.
  uint64_t spill_bytes = 0;
  uint32_t spill_partitions = 0;
  /// Map stages: this attempt's output is served from local disk (global
  /// Hadoop knob, or flipped per-node under memory pressure).
  bool output_on_disk = false;
};

/// Summary of a shuffle's per-bucket byte sizes exactly as the master saw
/// them through the 1-byte log encoding — the PDE skew signal (§3.1).
struct ShuffleSizeSummary {
  int buckets = 0;
  uint64_t min_bytes = 0;
  uint64_t median_bytes = 0;
  uint64_t max_bytes = 0;
  uint64_t total_bytes = 0;
  double skew = 0.0;  // max / mean; 1.0 = perfectly even, 0 = empty
};

ShuffleSizeSummary SummarizeBucketBytes(const std::vector<uint64_t>& bytes);

/// Block-cache traffic of one stage's committed tasks, per RDD.
struct CacheCounters {
  uint64_t hit_blocks = 0;
  uint64_t hit_bytes = 0;
  uint64_t miss_blocks = 0;
  uint64_t miss_bytes = 0;  // bytes recomputed because the cache missed
  void Add(const CacheCounters& other);
};

/// One scheduler task set: a map stage, a result stage, or a lineage
/// recovery sub-stage (nested under the stage whose task hit the loss).
struct StageTrace {
  int id = -1;
  int parent = -1;  // enclosing stage for recovery sub-stages, -1 = top level
  std::string label;
  bool is_map_stage = false;
  int shuffle_id = -1;  // map stages only
  double start_time = 0.0;
  double end_time = 0.0;
  std::vector<TaskTrace> tasks;  // every attempt, in launch order
  std::vector<std::string> events;  // deaths, speculation, recovery
  ShuffleSizeSummary shuffle;  // map stages: observed bucket distribution
  std::map<int, CacheCounters> cache_by_rdd;

  int committed_tasks() const;
  int speculative_tasks() const;
  int failed_tasks() const;  // non-committed, non-superseded attempts
  uint64_t rows_out() const;   // committed attempts only
  uint64_t bytes_out() const;  // committed attempts only
  TaskWork total_work() const;  // all attempts (what the job was charged)
  int spilled_tasks() const;          // committed attempts that spilled
  uint64_t spill_bytes() const;       // committed attempts only
  uint64_t spill_partitions() const;  // committed attempts only
  int disk_served_outputs() const;    // committed map outputs on disk
};

/// The per-query observability tree: every stage and task attempt the
/// scheduler ran for one query, in deterministic virtual-time order.
///
/// Determinism contract: recording happens in the scheduler's single-threaded
/// event loop and captures only virtual-time observables, so a profile (and
/// both renderings below) is byte-for-byte identical across host_threads
/// settings and across runs with the same seed and fault schedule.
struct QueryProfile {
  /// Stable identifier assigned by the submitter (server / client trace id);
  /// empty for queries run outside the serving path. Rendered only when set,
  /// so profiles without an id are byte-identical to pre-id builds.
  std::string query_id;
  double start_time = 0.0;
  double end_time = 0.0;
  uint64_t result_rows = 0;
  std::vector<StageTrace> stages;  // in BeginStage order
  /// rdd id -> table name for cached tables (filled by the SQL executor) so
  /// cache counters render per table.
  std::map<int, std::string> rdd_names;

  double duration() const { return end_time - start_time; }

  /// First stage whose label contains `label_part`; nullptr if none.
  const StageTrace* FindStage(const std::string& label_part) const;

  /// Cache traffic summed over all stages, per RDD.
  std::map<int, CacheCounters> CacheTotals() const;

  /// Human-readable per-stage/per-task report.
  std::string ToString() const;

  /// chrome://tracing trace_event JSON: one "process" per simulated node
  /// (plus a driver process holding stage spans and instant events), one
  /// "thread" per core; timestamps are virtual microseconds.
  std::string ToChromeTrace() const;
};

/// Owned by the cluster context; the scheduler records stages/tasks into the
/// active profile, the SQL executor brackets queries around it. All calls
/// happen on the driver thread (the scheduler's event loop is
/// single-threaded), so no synchronization is needed.
class TraceCollector {
 public:
  /// Starts a profile. Returns true if this call became the owner; a nested
  /// Begin (e.g. a subquery executed inside an active query) shares the
  /// outer profile and returns false.
  bool BeginQuery(double now);

  /// Finishes and returns the profile. Only the owner (the BeginQuery call
  /// that returned true) may call this; non-owners simply never end.
  std::shared_ptr<QueryProfile> EndQuery(double now);

  bool active() const { return profile_ != nullptr; }
  QueryProfile* profile() { return profile_.get(); }

  /// Trace id stamped onto profiles: the next BeginQuery (and the active
  /// profile, if any) records it as QueryProfile::query_id. Set by the
  /// JobManager when it admits a job carrying a query_id.
  void set_query_id(const std::string& id);
  const std::string& query_id() const { return query_id_; }

  /// Opens a stage (nested under the innermost open stage, if any) and
  /// returns its id. Requires active().
  int BeginStage(const std::string& label, bool is_map_stage, int shuffle_id,
                 double now);
  void EndStage(int stage_id, double now);

  /// Stage by id; invalidated by the next BeginStage (the vector may grow).
  StageTrace* stage(int stage_id);

  /// Id of the most recently ended stage, -1 if none; lets a caller annotate
  /// a stage right after the scheduler finished it.
  int last_ended_stage() const { return last_ended_; }

 private:
  std::shared_ptr<QueryProfile> profile_;
  std::vector<int> open_;  // stack of open stage ids
  int last_ended_ = -1;
  std::string query_id_;
};

}  // namespace shark

#endif  // SHARK_COMMON_TRACE_H_
