#ifndef SHARK_COMMON_CARDINALITY_H_
#define SHARK_COMMON_CARDINALITY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

namespace shark {

/// Mergeable k-minimum-values (KMV) distinct-count sketch. Feed it 64-bit
/// hashes of the keys; it keeps the `k` smallest hash values seen. With
/// fewer than `k` distinct hashes the count is exact; beyond that the
/// estimate (k-1) / R (R = k-th smallest hash mapped to (0,1]) has relative
/// standard error ~ 1/sqrt(k-2) (Beyer et al., "On synopses for
/// distinct-value estimation under multiset operations").
///
/// ANALYZE TABLE builds one per column per partition and merges them at the
/// master, so NDV estimation composes the same way the histogram and
/// heavy-hitter sketches do.
class DistinctSketch {
 public:
  explicit DistinctSketch(size_t k = 1024) : k_(std::max<size_t>(k, 16)) {}

  void AddHash(uint64_t h) {
    if (mins_.size() < k_) {
      mins_.insert(h);
    } else if (h < *mins_.rbegin()) {
      // Only grows when h is new; erase the old max if insertion happened.
      if (mins_.insert(h).second) mins_.erase(std::prev(mins_.end()));
    }
  }

  void Merge(const DistinctSketch& other) {
    for (uint64_t h : other.mins_) AddHash(h);
  }

  /// Estimated number of distinct hashes fed in.
  double Estimate() const {
    if (mins_.size() < k_) return static_cast<double>(mins_.size());
    // Map the k-th smallest hash to (0,1]; +1 avoids a zero divisor when
    // hash 0 is present.
    double r = (static_cast<double>(*mins_.rbegin()) + 1.0) /
               18446744073709551616.0;  // 2^64
    return (static_cast<double>(k_) - 1.0) / r;
  }

  bool exact() const { return mins_.size() < k_; }
  size_t k() const { return k_; }

 private:
  size_t k_;
  std::set<uint64_t> mins_;
};

/// Estimates how a distinct-value count grows when a sample of `n` draws
/// (which contained `d` distinct values) is scaled to `n * scale` draws from
/// the same key population.
///
/// Used to translate scaled-down benchmark runs into paper-sized virtual
/// costs at aggregation boundaries: a map-side combiner's output is bounded
/// by the number of distinct keys its task sees, which saturates — it does
/// NOT grow linearly with the input rows. Under a uniform-draw model the
/// expected distinct count from a population of K keys is
///   d(n) = K * (1 - exp(-n / K)),
/// so we invert that for K from the observed (n, d) (a birthday-paradox
/// estimate) and evaluate d(n * scale) / d(n).
///
/// Returns a factor in [1, scale]. Degenerate inputs (no data, scale <= 1,
/// d == n with no observed collisions) fall back to the linear answer.
inline double DistinctGrowthFactor(double n, double d, double scale) {
  if (scale <= 1.0 || n <= 0.0 || d <= 0.0) return std::max(scale, 1.0);
  d = std::min(d, n);
  // No collisions observed: the sample gives no evidence of saturation.
  if (n - d < 0.5) return scale;
  // Solve d = K (1 - exp(-n/K)) for K by bisection on K in [d, huge].
  double lo = d;             // K >= d always
  double hi = n * n / (2.0 * (n - d)) * 4.0 + d;  // beyond the Taylor estimate
  for (int iter = 0; iter < 60; ++iter) {
    double k = 0.5 * (lo + hi);
    double expected = k * (1.0 - std::exp(-n / k));
    if (expected < d) {
      lo = k;
    } else {
      hi = k;
    }
  }
  double k = 0.5 * (lo + hi);
  double d_virtual = k * (1.0 - std::exp(-(n * scale) / k));
  double factor = d_virtual / d;
  return std::clamp(factor, 1.0, scale);
}

/// Distinct statistics of a key sample, split into its first and second half
/// in arrival order. The halves discriminate two populations that plain
/// collision counting cannot tell apart:
///   - fixed population (country codes, ship modes, a bounded set of IPs):
///     the halves share keys roughly as independent draws would;
///   - growing population (order keys, session ids — cardinality
///     proportional to data size, usually arriving clustered): the halves
///     are nearly disjoint even though each key repeats locally.
struct SampleCardinality {
  double n = 0;        // sample size
  double d = 0;        // distinct keys overall
  double d_first = 0;  // distinct keys in the first half
  double d_second = 0; // distinct keys in the second half
  double overlap = 0;  // keys present in both halves
};

/// DistinctGrowthFactor refined with the split-overlap test: if a fixed-K
/// population fitted to the collision rate would predict far more overlap
/// between the halves than observed, the key population is segmented /
/// growing — extrapolate with the observed power law d(n) ~ n^alpha instead
/// of the saturating fixed-K curve. Returns a factor in [1, scale].
inline double DistinctGrowthFactorSplit(const SampleCardinality& s,
                                        double scale) {
  if (scale <= 1.0 || s.n <= 0.0 || s.d <= 0.0) return std::max(scale, 1.0);
  double fixed_k = DistinctGrowthFactor(s.n, s.d, scale);
  // Fit K to the collision rate, then predict the overlap two independent
  // halves of a fixed-K population would show.
  double n = s.n, d = std::min(s.d, s.n);
  if (n - d >= 0.5 && s.d_first > 0 && s.d_second > 0) {
    double lo = d, hi = n * n / (2.0 * (n - d)) * 4.0 + d;
    for (int iter = 0; iter < 60; ++iter) {
      double k = 0.5 * (lo + hi);
      (k * (1.0 - std::exp(-n / k)) < d ? lo : hi) = k;
    }
    double k_hat = 0.5 * (lo + hi);
    double expected_overlap = s.d_first * s.d_second / k_hat;
    if (expected_overlap >= 4.0 && s.overlap < 0.25 * expected_overlap) {
      // Segmented population: d grows like n^alpha with
      // alpha = log2(d(n) / d(n/2)).
      double r = s.d / std::max(std::max(s.d_first, s.d_second), 1.0);
      double alpha = std::clamp(std::log2(std::max(r, 1.0)), 0.0, 1.0);
      return std::clamp(std::pow(scale, alpha), 1.0, scale);
    }
  }
  return fixed_k;
}

}  // namespace shark

#endif  // SHARK_COMMON_CARDINALITY_H_
