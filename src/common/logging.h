#ifndef SHARK_COMMON_LOGGING_H_
#define SHARK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace shark {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a SHARK_LOG_LEVEL value: a name (debug/info/warn/error/off, any
/// case) or a numeric level 0-4. Returns false and leaves `out` untouched on
/// anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

namespace internal_logging {

/// Stream-style log sink. Emits on destruction. Used via the SHARK_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message and aborts the process. Used by SHARK_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace shark

#define SHARK_LOG(level)                                              \
  if (::shark::LogLevel::level >= ::shark::GetLogLevel())             \
  ::shark::internal_logging::LogMessage(::shark::LogLevel::level,     \
                                        __FILE__, __LINE__)

/// Invariant check; always on (used for internal invariants, not user input).
#define SHARK_CHECK(cond)                                                  \
  if (!(cond))                                                             \
  ::shark::internal_logging::FatalLogMessage(__FILE__, __LINE__, #cond)

#endif  // SHARK_COMMON_LOGGING_H_
