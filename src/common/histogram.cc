#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace shark {

ApproxHistogram::ApproxHistogram(int bucket_count)
    : target_buckets_(bucket_count),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  SHARK_CHECK(bucket_count >= 2);
}

void ApproxHistogram::Add(double v) {
  ++count_;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  if (!built_) {
    buffer_.push_back(v);
    if (buffer_.size() > static_cast<size_t>(2 * target_buckets_)) Build();
    return;
  }
  if (v < lo_ || v >= lo_ + width_ * static_cast<double>(buckets_.size())) {
    ExpandToInclude(v);
  }
  AddToBuckets(v, 1);
}

void ApproxHistogram::Build() {
  built_ = true;
  buckets_.assign(static_cast<size_t>(target_buckets_), 0);
  double span = max_ - min_;
  if (span <= 0.0) span = 1.0;
  lo_ = min_;
  width_ = span / static_cast<double>(target_buckets_) * (1.0 + 1e-9);
  for (double v : buffer_) AddToBuckets(v, 1);
  buffer_.clear();
  buffer_.shrink_to_fit();
}

void ApproxHistogram::AddToBuckets(double v, uint64_t weight) {
  double idx = (v - lo_) / width_;
  auto i = static_cast<long>(idx);
  if (i < 0) i = 0;
  if (i >= static_cast<long>(buckets_.size())) {
    i = static_cast<long>(buckets_.size()) - 1;
  }
  buckets_[static_cast<size_t>(i)] += weight;
}

void ApproxHistogram::ExpandToInclude(double v) {
  // Double the bucket width (merging pairs) until v fits, growing toward the
  // needed side by shifting lo_ when expanding left.
  while (v < lo_ || v >= lo_ + width_ * static_cast<double>(buckets_.size())) {
    std::vector<uint64_t> merged(buckets_.size(), 0);
    bool grow_left = v < lo_;
    double new_lo = grow_left
                        ? lo_ - width_ * static_cast<double>(buckets_.size())
                        : lo_;
    double new_width = width_ * 2.0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      double center = BucketLow(i) + width_ * 0.5;
      double idx = (center - new_lo) / new_width;
      auto j = static_cast<long>(idx);
      if (j < 0) j = 0;
      if (j >= static_cast<long>(merged.size())) {
        j = static_cast<long>(merged.size()) - 1;
      }
      merged[static_cast<size_t>(j)] += buckets_[i];
    }
    buckets_ = std::move(merged);
    lo_ = new_lo;
    width_ = new_width;
  }
}

void ApproxHistogram::Merge(const ApproxHistogram& other) {
  if (other.count_ == 0) return;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  if (!other.built_) {
    for (double v : other.buffer_) {
      // count_/min_/max_ already merged above; insert value weightlessly.
      if (!built_) {
        buffer_.push_back(v);
        if (buffer_.size() > static_cast<size_t>(2 * target_buckets_)) Build();
      } else {
        if (v < lo_ ||
            v >= lo_ + width_ * static_cast<double>(buckets_.size())) {
          ExpandToInclude(v);
        }
        AddToBuckets(v, 1);
      }
    }
    return;
  }
  if (!built_) Build();
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] == 0) continue;
    double center = other.BucketLow(i) + other.width_ * 0.5;
    if (center < lo_ ||
        center >= lo_ + width_ * static_cast<double>(buckets_.size())) {
      ExpandToInclude(center);
    }
    AddToBuckets(center, other.buckets_[i]);
  }
}

double ApproxHistogram::EstimateRank(double v) const {
  if (count_ == 0) return 0.0;
  if (!built_) {
    double below = 0;
    for (double x : buffer_) {
      if (x <= v) below += 1.0;
    }
    return below;
  }
  double rank = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double blo = BucketLow(i);
    double bhi = blo + width_;
    if (v >= bhi) {
      rank += static_cast<double>(buckets_[i]);
    } else if (v > blo) {
      rank += static_cast<double>(buckets_[i]) * (v - blo) / width_;
    }
  }
  return rank;
}

double ApproxHistogram::EstimateQuantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (!built_) {
    std::vector<double> sorted(buffer_);
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  }
  double target = q * static_cast<double>(count_);
  double acc = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double b = static_cast<double>(buckets_[i]);
    if (acc + b >= target) {
      double frac = b > 0 ? (target - acc) / b : 0.0;
      return BucketLow(i) + frac * width_;
    }
    acc += b;
  }
  return max_;
}

double ApproxHistogram::EstimateRangeCount(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return EstimateRank(hi) - EstimateRank(lo);
}

}  // namespace shark
