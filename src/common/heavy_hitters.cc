#include "common/heavy_hitters.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace shark {

HeavyHitters::HeavyHitters(size_t capacity) : capacity_(capacity) {
  SHARK_CHECK(capacity >= 1);
}

void HeavyHitters::Add(uint64_t key, uint64_t weight) {
  total_ += weight;
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    it->second.first += weight;
    return;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(key, std::make_pair(weight, uint64_t{0}));
    return;
  }
  EvictAndInsert(key, weight);
}

void HeavyHitters::EvictAndInsert(uint64_t key, uint64_t weight) {
  // SpaceSaving: replace the minimum-count entry; the newcomer inherits the
  // evicted count as its error bound.
  auto min_it = counts_.begin();
  for (auto it = counts_.begin(); it != counts_.end(); ++it) {
    if (it->second.first < min_it->second.first) min_it = it;
  }
  uint64_t min_count = min_it->second.first;
  counts_.erase(min_it);
  counts_.emplace(key, std::make_pair(min_count + weight, min_count));
}

void HeavyHitters::Merge(const HeavyHitters& other) {
  for (const auto& [key, ce] : other.counts_) {
    auto it = counts_.find(key);
    if (it != counts_.end()) {
      it->second.first += ce.first;
      it->second.second += ce.second;
    } else if (counts_.size() < capacity_) {
      counts_.emplace(key, ce);
    } else {
      EvictAndInsert(key, ce.first);
    }
  }
  total_ += other.total_;
}

std::vector<HeavyHitters::Entry> HeavyHitters::TopK(size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(counts_.size());
  for (const auto& [key, ce] : counts_) {
    entries.push_back(Entry{key, ce.first, ce.second});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.count > b.count; });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

uint64_t HeavyHitters::LowerBound(uint64_t key) const {
  auto it = counts_.find(key);
  if (it == counts_.end()) return 0;
  uint64_t count = it->second.first;
  uint64_t error = it->second.second;
  return count > error ? count - error : 0;
}

}  // namespace shark
