#include "mem/memory_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace shark {

MemoryManager::MemoryManager(int num_nodes, uint64_t capacity_bytes_per_node,
                             int cores_per_node)
    : capacity_per_node_(std::max<uint64_t>(capacity_bytes_per_node, 1)),
      cores_per_node_(std::max(cores_per_node, 1)),
      shuffle_bytes_(static_cast<size_t>(num_nodes), 0),
      peak_task_bytes_(static_cast<size_t>(num_nodes), 0) {
  SHARK_CHECK(num_nodes > 0);
}

uint64_t MemoryManager::UsedBytes(int node) const {
  uint64_t used = shuffle_bytes_[static_cast<size_t>(node)];
  if (cache_usage_) used += cache_usage_(node);
  // Admitted jobs' declared demand and index footprints, spread evenly,
  // press on every node: concurrent queries see less working-set headroom
  // and shuffle fit.
  used += admitted_bytes_ / static_cast<uint64_t>(num_nodes());
  used += index_bytes_total_ / static_cast<uint64_t>(num_nodes());
  return used;
}

uint64_t MemoryManager::AdmissionHeadroomBytes() const {
  uint64_t total = 0;
  for (int n = 0; n < num_nodes(); ++n) {
    uint64_t used = UsedBytes(n);
    if (capacity_per_node_ > used) total += capacity_per_node_ - used;
  }
  return total;
}

void MemoryManager::ReserveAdmission(uint64_t bytes) {
  admitted_bytes_ += bytes;
}

void MemoryManager::ReleaseAdmission(uint64_t bytes) {
  admitted_bytes_ -= std::min(admitted_bytes_, bytes);
}

bool MemoryManager::ShuffleFits(int node, uint64_t bytes) const {
  uint64_t used = UsedBytes(node);
  return used + bytes <= capacity_per_node_;
}

void MemoryManager::AddShuffleBytes(int node, uint64_t bytes) {
  shuffle_bytes_[static_cast<size_t>(node)] += bytes;
}

void MemoryManager::ReleaseShuffleBytes(int node, uint64_t bytes) {
  uint64_t& slot = shuffle_bytes_[static_cast<size_t>(node)];
  slot -= std::min(slot, bytes);
}

uint64_t MemoryManager::shuffle_bytes(int node) const {
  return shuffle_bytes_[static_cast<size_t>(node)];
}

uint64_t MemoryManager::total_shuffle_bytes() const {
  uint64_t total = 0;
  for (uint64_t b : shuffle_bytes_) total += b;
  return total;
}

void MemoryManager::AddIndexBytes(uint64_t bytes) {
  index_bytes_total_ += bytes;
}

void MemoryManager::ReleaseIndexBytes(uint64_t bytes) {
  index_bytes_total_ -= std::min(index_bytes_total_, bytes);
}

uint64_t MemoryManager::TaskWorkingSetBudget() const {
  uint64_t worst_used = 0;
  for (int n = 0; n < num_nodes(); ++n) {
    worst_used = std::max(worst_used, UsedBytes(n));
  }
  uint64_t headroom =
      capacity_per_node_ > worst_used ? capacity_per_node_ - worst_used : 0;
  uint64_t cores = static_cast<uint64_t>(cores_per_node_);
  uint64_t floor = std::max<uint64_t>(capacity_per_node_ / (4 * cores), 1);
  return std::max(headroom / cores, floor);
}

void MemoryManager::CommitTaskOps(int node, const std::vector<MemOp>& ops) {
  uint64_t reserved = 0;
  uint64_t& peak = peak_task_bytes_[static_cast<size_t>(node)];
  for (const MemOp& op : ops) {
    switch (op.kind) {
      case MemOp::Kind::kReserve:
      case MemOp::Kind::kGrow:
        if (op.granted) {
          reserved += op.bytes;
          peak = std::max(peak, reserved);
        } else {
          ++denied_reservations_;
        }
        break;
      case MemOp::Kind::kRelease:
        reserved -= std::min(reserved, op.bytes);
        break;
      case MemOp::Kind::kSpill:
        committed_spill_bytes_ += op.bytes;
        committed_spill_partitions_ += op.spill_partitions;
        break;
    }
  }
}

uint64_t MemoryManager::peak_task_bytes(int node) const {
  return peak_task_bytes_[static_cast<size_t>(node)];
}

std::string MemoryManager::DebugString() const {
  std::string out = "MemoryManager capacity/node=" +
                    FormatBytes(capacity_per_node_) +
                    " shuffle=" + FormatBytes(total_shuffle_bytes()) +
                    " index=" + FormatBytes(index_bytes_total_) +
                    " task-budget=" + FormatBytes(TaskWorkingSetBudget()) +
                    " denied=" + std::to_string(denied_reservations_) +
                    " spilled=" + FormatBytes(committed_spill_bytes_);
  return out;
}

}  // namespace shark
