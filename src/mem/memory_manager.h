#ifndef SHARK_MEM_MEMORY_MANAGER_H_
#define SHARK_MEM_MEMORY_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace shark {

/// One working-set reservation operation logged by a pure task body.
///
/// Task bodies may run concurrently on host threads, so — like CacheOp for
/// the block cache — they never touch the shared MemoryManager. Each body
/// decides against a per-task budget latched by the scheduler's event loop,
/// records what it did here, and the scheduler replays the winning attempt's
/// log via MemoryManager::CommitTaskOps in deterministic commit order.
struct MemOp {
  enum class Kind : uint8_t { kReserve, kGrow, kRelease, kSpill };
  Kind kind = Kind::kReserve;
  uint64_t bytes = 0;
  /// For kReserve/kGrow: whether the task's budget had room. A denied
  /// reservation is immediately followed by a kSpill describing the external
  /// algorithm the operator degraded to.
  bool granted = true;
  /// For kSpill: number of on-disk partitions (grace hash) or sorted runs
  /// (external sort) the working set was split into.
  uint32_t spill_partitions = 0;
};

/// Per-node arbiter of the virtual memory budget (`mem_bytes_per_node`,
/// scaled down by virtual_data_scale exactly like the block-cache capacity).
///
/// Three consumers share each node's budget:
///   1. the RDD block cache — the senior consumer; it keeps its own LRU
///      enforcement and is observed (not controlled) through `cache_usage_fn`,
///   2. shuffle map-output buffers — a ledger maintained by ShuffleManager
///      (AddShuffleBytes/ReleaseShuffleBytes); when a new map output would
///      not fit, the scheduler flips that output to disk-based serving,
///   3. per-task operator working sets — hash tables and sort buffers,
///      granted from the headroom left by 1+2 via TaskWorkingSetBudget().
///
/// All mutation happens in the scheduler's single-threaded event loop
/// (commit order), so no locking is needed and every decision is
/// deterministic under host_threads.
class MemoryManager {
 public:
  using CacheUsageFn = std::function<uint64_t(int node)>;

  MemoryManager(int num_nodes, uint64_t capacity_bytes_per_node,
                int cores_per_node);

  /// Hook reporting the block cache's resident bytes on a node.
  void set_cache_usage_fn(CacheUsageFn fn) { cache_usage_ = std::move(fn); }

  int num_nodes() const { return static_cast<int>(shuffle_bytes_.size()); }
  uint64_t capacity_per_node() const { return capacity_per_node_; }

  /// Cache + shuffle-buffer bytes resident on `node`.
  uint64_t UsedBytes(int node) const;

  // ---- Consumer 2: shuffle map-output buffers ----------------------------

  /// Launch-time decision: would a memory-served map output of `bytes` fit
  /// on `node` next to everything already resident?
  bool ShuffleFits(int node, uint64_t bytes) const;

  void AddShuffleBytes(int node, uint64_t bytes);
  void ReleaseShuffleBytes(int node, uint64_t bytes);
  uint64_t shuffle_bytes(int node) const;
  uint64_t total_shuffle_bytes() const;

  // ---- Consumer 2b: secondary indexes ------------------------------------
  //
  // A CREATE INDEX materializes a B+-tree on the master and charges its
  // footprint here like cache blocks: spread evenly across nodes, counted in
  // UsedBytes so admission control and working-set budgets see index
  // pressure. DROP INDEX / DROP TABLE / UNCACHE release the reservation.

  void AddIndexBytes(uint64_t bytes);
  void ReleaseIndexBytes(uint64_t bytes);
  uint64_t total_index_bytes() const { return index_bytes_total_; }

  // ---- Consumer 3: per-task operator working sets ------------------------

  /// Budget one task may claim for operator working sets, derived from the
  /// worst-case node: the headroom left by cache + shuffle buffers divided
  /// across that node's cores. Execution memory always keeps a minimum share
  /// of capacity/(4*cores) so a full cache degrades operators to spilling
  /// instead of starving them to zero.
  ///
  /// The scheduler latches this once per (stage, epoch) — task bodies must
  /// see a frozen value, since shuffle commits move the ledger mid-epoch.
  uint64_t TaskWorkingSetBudget() const;

  /// Replays a committed task's reservation log, tracking per-node peak
  /// working-set bytes and global denial/spill totals.
  void CommitTaskOps(int node, const std::vector<MemOp>& ops);

  // ---- Admission control (consumer 0: whole jobs) ------------------------
  //
  // The JobManager gates query admission on cluster-wide memory headroom: a
  // job declares an aggregate working-set demand and is admitted only when
  // that demand fits into what the cache, shuffle ledger and already-admitted
  // jobs leave free — a heavy query queues (with a metrics-visible reason)
  // instead of evicting the warm cache or OOM-spilling everyone. Admitted
  // demand is spread evenly across nodes and shaves each node's working-set
  // headroom, so TaskWorkingSetBudget sees concurrent jobs' pressure.

  /// Cluster-wide bytes available to admit new jobs: per-node headroom left
  /// by cache + shuffle + admitted jobs, summed over nodes.
  uint64_t AdmissionHeadroomBytes() const;

  /// Records an admitted job's demand. Callers check AdmissionHeadroomBytes
  /// first; reserving beyond it is allowed (the queue never deadlocks when
  /// the cluster is otherwise idle) and simply drives headroom to zero.
  void ReserveAdmission(uint64_t bytes);

  /// Releases an admitted job's demand (always runs, success or failure).
  void ReleaseAdmission(uint64_t bytes);

  uint64_t admitted_bytes() const { return admitted_bytes_; }

  // ---- Observability -----------------------------------------------------

  uint64_t peak_task_bytes(int node) const;
  uint64_t denied_reservations() const { return denied_reservations_; }
  uint64_t committed_spill_bytes() const { return committed_spill_bytes_; }
  uint64_t committed_spill_partitions() const {
    return committed_spill_partitions_;
  }

  std::string DebugString() const;

 private:
  uint64_t capacity_per_node_;
  int cores_per_node_;
  CacheUsageFn cache_usage_;
  std::vector<uint64_t> shuffle_bytes_;
  std::vector<uint64_t> peak_task_bytes_;
  uint64_t index_bytes_total_ = 0;
  uint64_t admitted_bytes_ = 0;
  uint64_t denied_reservations_ = 0;
  uint64_t committed_spill_bytes_ = 0;
  uint64_t committed_spill_partitions_ = 0;
};

}  // namespace shark

#endif  // SHARK_MEM_MEMORY_MANAGER_H_
