#ifndef SHARK_COLUMNAR_COLUMN_H_
#define SHARK_COLUMNAR_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relation/value.h"

namespace shark {

/// Physical encodings of a column chunk (§3.2: "CPU-efficient compression
/// schemes such as dictionary encoding, run-length encoding, and bit
/// packing"). kGeneric is the uncompressed object-per-value fallback used
/// when a column contains NULLs or mixed types; it also serves as the
/// "deserialized JVM objects" baseline in the memory-footprint experiments.
enum class Encoding : uint8_t {
  kGeneric = 0,
  kPlain,
  kRunLength,
  kDictionary,
  kBitPacked,
};

const char* EncodingName(Encoding e);

/// Per-partition, per-column statistics collected while loading, used by map
/// pruning (§3.5): value range plus the distinct set when small (enum-like
/// columns).
struct ColumnStats {
  Value min;
  Value max;
  bool has_range = false;
  uint64_t null_count = 0;
  uint64_t num_values = 0;

  /// Distinct values if their count stayed <= kMaxDistinct.
  static constexpr size_t kMaxDistinct = 64;
  std::vector<Value> distinct;
  bool distinct_overflowed = false;

  void Update(const Value& v);

  /// Conservative: false only if no row can equal v.
  bool MayEqual(const Value& v) const;

  /// Conservative: false only if no row can lie in [lo, hi] (null bounds are
  /// unbounded ends).
  bool MayIntersect(const Value* lo, const Value* hi) const;
};

/// Immutable encoded column of one table partition.
class ColumnChunk {
 public:
  virtual ~ColumnChunk() = default;

  virtual TypeKind type() const = 0;
  virtual Encoding encoding() const = 0;
  virtual size_t size() const = 0;

  /// Approximate in-memory footprint in bytes.
  virtual uint64_t MemoryBytes() const = 0;

  /// Random access (may be O(log runs) for RLE).
  virtual Value GetValue(size_t i) const = 0;

  /// Sequential decode of the whole chunk into `out` (appended).
  virtual void Decode(std::vector<Value>* out) const;

  // -- Typed decode (vectorized execution) -----------------------------------
  //
  // Typed chunks never contain NULLs (EncodeColumn falls back to kGeneric for
  // nullable data), so a successful typed decode is a dense, NULL-free array.
  // Each hook returns false when the chunk cannot produce that representation
  // (wrong type family, or the kGeneric fallback); callers then decode Values.

  /// BIGINT/DATE/BOOLEAN payloads (booleans as 0/1), appended to `out`.
  virtual bool DecodeInt64s(std::vector<int64_t>* out) const {
    (void)out;
    return false;
  }

  /// DOUBLE payloads, appended to `out`.
  virtual bool DecodeDoubles(std::vector<double>* out) const {
    (void)out;
    return false;
  }

  /// STRING payloads as views into chunk-owned storage, valid while the
  /// chunk is alive; appended to `out`.
  virtual bool DecodeStringViews(std::vector<std::string_view>* out) const {
    (void)out;
    return false;
  }
};

/// Encodes `values` (all of `type`, or NULL) with the given encoding.
/// Falls back to kGeneric when the encoding cannot represent the data
/// (e.g. NULLs present, or dictionary overflow).
std::unique_ptr<ColumnChunk> EncodeColumn(TypeKind type,
                                          const std::vector<Value>& values,
                                          Encoding encoding);

/// Per-partition local choice of the best encoding (§3.3: each loading task
/// picks per-column schemes from its own data, no global coordination).
Encoding ChooseEncoding(TypeKind type, const std::vector<Value>& values);

/// ChooseEncoding + EncodeColumn, also filling `stats` if non-null.
std::unique_ptr<ColumnChunk> EncodeColumnAuto(TypeKind type,
                                              const std::vector<Value>& values,
                                              ColumnStats* stats);

}  // namespace shark

#endif  // SHARK_COLUMNAR_COLUMN_H_
