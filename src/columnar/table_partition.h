#ifndef SHARK_COLUMNAR_TABLE_PARTITION_H_
#define SHARK_COLUMNAR_TABLE_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "columnar/column.h"
#include "relation/row.h"
#include "relation/types.h"

namespace shark {

/// One partition of a cached table in Shark's columnar memory store (§3.2):
/// every column encoded independently (per-partition scheme choice, §3.3)
/// plus the per-column statistics map pruning consults (§3.5).
class TablePartition {
 public:
  /// Marshals rows into columnar form, choosing encodings per column.
  static std::shared_ptr<const TablePartition> FromRows(
      const Schema& schema, const std::vector<Row>& rows);

  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const ColumnChunk& column(int i) const { return *columns_[static_cast<size_t>(i)]; }
  const ColumnStats& stats(int i) const { return stats_[static_cast<size_t>(i)]; }

  /// Total footprint of the partition.
  uint64_t MemoryBytes() const;
  /// Footprint of a single column (drives column-pruned scan costs).
  uint64_t ColumnBytes(int i) const {
    return columns_[static_cast<size_t>(i)]->MemoryBytes();
  }

  /// Materializes rows. If `wanted` is non-null, only those column indices
  /// are decoded; the rest are NULL (column pruning keeps row arity stable
  /// so expression slot bindings stay valid).
  std::vector<Row> ToRows(const std::vector<int>* wanted) const;

  Row GetRow(size_t i) const;

 private:
  TablePartition() = default;

  size_t num_rows_ = 0;
  std::vector<std::unique_ptr<ColumnChunk>> columns_;
  std::vector<ColumnStats> stats_;
};

/// Shared handle used as the RDD element type for cached tables.
using TablePartitionPtr = std::shared_ptr<const TablePartition>;

inline uint64_t ApproxSizeOf(const TablePartitionPtr& p) {
  return p == nullptr ? 8 : p->MemoryBytes();
}

}  // namespace shark

#endif  // SHARK_COLUMNAR_TABLE_PARTITION_H_
