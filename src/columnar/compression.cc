#include "columnar/compression.h"

#include "common/logging.h"

namespace shark {

BitPackedArray::BitPackedArray(int width) : width_(width) {
  SHARK_CHECK(width >= 1 && width <= 64);
}

void BitPackedArray::Append(uint64_t v) {
  size_t bit_pos = size_ * static_cast<size_t>(width_);
  size_t word = bit_pos / 64;
  int offset = static_cast<int>(bit_pos % 64);
  while (words_.size() <= word + 1) words_.push_back(0);
  if (width_ < 64) {
    SHARK_CHECK(v < (1ULL << width_));
  }
  words_[word] |= v << offset;
  int spill = offset + width_ - 64;
  if (spill > 0) {
    words_[word + 1] |= v >> (width_ - spill);
  }
  ++size_;
}

uint64_t BitPackedArray::Get(size_t i) const {
  size_t bit_pos = i * static_cast<size_t>(width_);
  size_t word = bit_pos / 64;
  int offset = static_cast<int>(bit_pos % 64);
  uint64_t v = words_[word] >> offset;
  int spill = offset + width_ - 64;
  if (spill > 0) {
    v |= words_[word + 1] << (width_ - spill);
  }
  if (width_ < 64) {
    v &= (1ULL << width_) - 1;
  }
  return v;
}

int BitPackedArray::WidthFor(uint64_t max_value) {
  int w = 1;
  while (w < 64 && (max_value >> w) != 0) ++w;
  return w;
}

}  // namespace shark
