#include "columnar/column.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "columnar/compression.h"
#include "common/logging.h"

namespace shark {

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kGeneric:
      return "GENERIC";
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kRunLength:
      return "RLE";
    case Encoding::kDictionary:
      return "DICT";
    case Encoding::kBitPacked:
      return "BITPACK";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ColumnStats
// ---------------------------------------------------------------------------

void ColumnStats::Update(const Value& v) {
  ++num_values;
  if (v.is_null()) {
    ++null_count;
    return;
  }
  if (!has_range) {
    min = v;
    max = v;
    has_range = true;
  } else {
    if (v.Compare(min) < 0) min = v;
    if (v.Compare(max) > 0) max = v;
  }
  if (!distinct_overflowed) {
    bool found = false;
    for (const Value& d : distinct) {
      if (d == v) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (distinct.size() >= kMaxDistinct) {
        distinct_overflowed = true;
        distinct.clear();
      } else {
        distinct.push_back(v);
      }
    }
  }
}

bool ColumnStats::MayEqual(const Value& v) const {
  if (v.is_null()) return null_count > 0;
  if (!has_range) return false;  // all-NULL partition
  if (v.Compare(min) < 0 || v.Compare(max) > 0) return false;
  if (!distinct_overflowed) {
    for (const Value& d : distinct) {
      if (d == v) return true;
    }
    return false;
  }
  return true;
}

bool ColumnStats::MayIntersect(const Value* lo, const Value* hi) const {
  if (!has_range) return false;
  if (lo != nullptr && !lo->is_null() && max.Compare(*lo) < 0) return false;
  if (hi != nullptr && !hi->is_null() && min.Compare(*hi) > 0) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Chunk implementations
// ---------------------------------------------------------------------------

void ColumnChunk::Decode(std::vector<Value>* out) const {
  for (size_t i = 0; i < size(); ++i) out->push_back(GetValue(i));
}

namespace {

/// Fallback: one Value object per cell (the "cache on-heap objects" baseline
/// the paper contrasts the columnar store against).
class GenericChunk final : public ColumnChunk {
 public:
  GenericChunk(TypeKind type, std::vector<Value> values)
      : type_(type), values_(std::move(values)) {}

  TypeKind type() const override { return type_; }
  Encoding encoding() const override { return Encoding::kGeneric; }
  size_t size() const override { return values_.size(); }

  uint64_t MemoryBytes() const override {
    uint64_t total = 24;
    // Per-element object overhead mirrors a JVM boxed representation
    // (§3.2: 12-16 bytes of header per object).
    for (const Value& v : values_) total += ApproxSizeOf(v) + 16;
    return total;
  }

  Value GetValue(size_t i) const override { return values_[i]; }

  void Decode(std::vector<Value>* out) const override {
    out->insert(out->end(), values_.begin(), values_.end());
  }

 private:
  TypeKind type_;
  std::vector<Value> values_;
};

/// Plain primitive array for BIGINT/DATE (one flat array per column: a
/// single "object", §3.2).
class Int64PlainChunk final : public ColumnChunk {
 public:
  Int64PlainChunk(TypeKind type, std::vector<int64_t> values)
      : type_(type), values_(std::move(values)) {}

  TypeKind type() const override { return type_; }
  Encoding encoding() const override { return Encoding::kPlain; }
  size_t size() const override { return values_.size(); }
  uint64_t MemoryBytes() const override { return 24 + values_.size() * 8; }

  Value GetValue(size_t i) const override { return Make(values_[i]); }

  void Decode(std::vector<Value>* out) const override {
    for (int64_t v : values_) out->push_back(Make(v));
  }

  bool DecodeInt64s(std::vector<int64_t>* out) const override {
    out->insert(out->end(), values_.begin(), values_.end());
    return true;
  }

 private:
  Value Make(int64_t v) const {
    return type_ == TypeKind::kDate ? Value::Date(v) : Value::Int64(v);
  }

  TypeKind type_;
  std::vector<int64_t> values_;
};

class DoublePlainChunk final : public ColumnChunk {
 public:
  explicit DoublePlainChunk(std::vector<double> values)
      : values_(std::move(values)) {}

  TypeKind type() const override { return TypeKind::kDouble; }
  Encoding encoding() const override { return Encoding::kPlain; }
  size_t size() const override { return values_.size(); }
  uint64_t MemoryBytes() const override { return 24 + values_.size() * 8; }

  Value GetValue(size_t i) const override { return Value::Double(values_[i]); }

  void Decode(std::vector<Value>* out) const override {
    for (double v : values_) out->push_back(Value::Double(v));
  }

  bool DecodeDoubles(std::vector<double>* out) const override {
    out->insert(out->end(), values_.begin(), values_.end());
    return true;
  }

 private:
  std::vector<double> values_;
};

/// Strings as one concatenated byte buffer plus offsets (§3.2: complex/varlen
/// data "serialized and concatenated into a single byte array").
class StringPlainChunk final : public ColumnChunk {
 public:
  explicit StringPlainChunk(const std::vector<Value>& values) {
    offsets_.reserve(values.size() + 1);
    offsets_.push_back(0);
    for (const Value& v : values) {
      buffer_.append(v.str());
      offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
    }
  }

  TypeKind type() const override { return TypeKind::kString; }
  Encoding encoding() const override { return Encoding::kPlain; }
  size_t size() const override { return offsets_.size() - 1; }
  uint64_t MemoryBytes() const override {
    return 48 + buffer_.size() + offsets_.size() * 4;
  }

  Value GetValue(size_t i) const override {
    return Value::String(
        buffer_.substr(offsets_[i], offsets_[i + 1] - offsets_[i]));
  }

  bool DecodeStringViews(std::vector<std::string_view>* out) const override {
    const char* base = buffer_.data();
    for (size_t i = 0; i + 1 < offsets_.size(); ++i) {
      out->emplace_back(base + offsets_[i], offsets_[i + 1] - offsets_[i]);
    }
    return true;
  }

 private:
  std::string buffer_;
  std::vector<uint32_t> offsets_;
};

class BoolBitChunk final : public ColumnChunk {
 public:
  explicit BoolBitChunk(const std::vector<Value>& values) : bits_(1) {
    for (const Value& v : values) bits_.Append(v.bool_v() ? 1 : 0);
  }

  TypeKind type() const override { return TypeKind::kBool; }
  Encoding encoding() const override { return Encoding::kBitPacked; }
  size_t size() const override { return bits_.size(); }
  uint64_t MemoryBytes() const override { return bits_.MemoryBytes(); }

  Value GetValue(size_t i) const override {
    return Value::Bool(bits_.Get(i) != 0);
  }

  bool DecodeInt64s(std::vector<int64_t>* out) const override {
    for (size_t i = 0; i < bits_.size(); ++i) {
      out->push_back(bits_.Get(i) != 0 ? 1 : 0);
    }
    return true;
  }

 private:
  BitPackedArray bits_;
};

/// Run-length encoding for BIGINT/DATE; random access via binary search over
/// run start offsets.
class Int64RleChunk final : public ColumnChunk {
 public:
  Int64RleChunk(TypeKind type, const std::vector<Value>& values)
      : type_(type), size_(values.size()) {
    size_t i = 0;
    while (i < values.size()) {
      int64_t v = values[i].int64_v();
      size_t j = i;
      while (j < values.size() && values[j].int64_v() == v) ++j;
      run_values_.push_back(v);
      run_starts_.push_back(static_cast<uint32_t>(i));
      i = j;
    }
  }

  TypeKind type() const override { return type_; }
  Encoding encoding() const override { return Encoding::kRunLength; }
  size_t size() const override { return size_; }
  uint64_t MemoryBytes() const override {
    return 48 + run_values_.size() * 8 + run_starts_.size() * 4;
  }
  size_t num_runs() const { return run_values_.size(); }

  Value GetValue(size_t i) const override {
    auto it = std::upper_bound(run_starts_.begin(), run_starts_.end(),
                               static_cast<uint32_t>(i));
    size_t run = static_cast<size_t>(it - run_starts_.begin()) - 1;
    return Make(run_values_[run]);
  }

  void Decode(std::vector<Value>* out) const override {
    for (size_t r = 0; r < run_values_.size(); ++r) {
      size_t end = r + 1 < run_starts_.size() ? run_starts_[r + 1] : size_;
      for (size_t i = run_starts_[r]; i < end; ++i) {
        out->push_back(Make(run_values_[r]));
      }
    }
  }

  bool DecodeInt64s(std::vector<int64_t>* out) const override {
    for (size_t r = 0; r < run_values_.size(); ++r) {
      size_t end = r + 1 < run_starts_.size() ? run_starts_[r + 1] : size_;
      out->insert(out->end(), end - run_starts_[r], run_values_[r]);
    }
    return true;
  }

 private:
  Value Make(int64_t v) const {
    return type_ == TypeKind::kDate ? Value::Date(v) : Value::Int64(v);
  }

  TypeKind type_;
  size_t size_;
  std::vector<int64_t> run_values_;
  std::vector<uint32_t> run_starts_;
};

/// Dictionary encoding for strings: distinct values stored once, cells are
/// bit-packed codes.
class DictStringChunk final : public ColumnChunk {
 public:
  /// Caller guarantees distinct count <= kMaxDict.
  static constexpr size_t kMaxDict = 4096;

  explicit DictStringChunk(const std::vector<Value>& values)
      : codes_(BuildCodes(values)) {}

  TypeKind type() const override { return TypeKind::kString; }
  Encoding encoding() const override { return Encoding::kDictionary; }
  size_t size() const override { return codes_.size(); }

  uint64_t MemoryBytes() const override {
    uint64_t dict_bytes = 24;
    for (const std::string& s : dict_) dict_bytes += 24 + s.size();
    return dict_bytes + codes_.MemoryBytes();
  }

  Value GetValue(size_t i) const override {
    return Value::String(dict_[codes_.Get(i)]);
  }

  bool DecodeStringViews(std::vector<std::string_view>* out) const override {
    for (size_t i = 0; i < codes_.size(); ++i) {
      out->emplace_back(dict_[codes_.Get(i)]);
    }
    return true;
  }

  size_t dict_size() const { return dict_.size(); }

 private:
  BitPackedArray BuildCodes(const std::vector<Value>& values) {
    std::unordered_map<std::string, uint32_t> index;
    std::vector<uint32_t> raw;
    raw.reserve(values.size());
    for (const Value& v : values) {
      auto [it, inserted] =
          index.emplace(v.str(), static_cast<uint32_t>(dict_.size()));
      if (inserted) dict_.push_back(v.str());
      raw.push_back(it->second);
    }
    SHARK_CHECK(dict_.size() <= kMaxDict);
    int width = BitPackedArray::WidthFor(dict_.empty() ? 1 : dict_.size() - 1);
    BitPackedArray codes(width);
    for (uint32_t c : raw) codes.Append(c);
    return codes;
  }

  std::vector<std::string> dict_;
  BitPackedArray codes_;
};

/// Bit packing for BIGINT with a small value range: base + packed offsets.
class Int64BitPackedChunk final : public ColumnChunk {
 public:
  Int64BitPackedChunk(TypeKind type, const std::vector<Value>& values,
                      int64_t base, int width)
      : type_(type), base_(base), packed_(width) {
    for (const Value& v : values) {
      // Unsigned subtraction: base may be INT64_MIN and the offset can
      // exceed INT64_MAX; signed subtraction would overflow.
      packed_.Append(static_cast<uint64_t>(v.int64_v()) -
                     static_cast<uint64_t>(base));
    }
  }

  TypeKind type() const override { return type_; }
  Encoding encoding() const override { return Encoding::kBitPacked; }
  size_t size() const override { return packed_.size(); }
  uint64_t MemoryBytes() const override { return 32 + packed_.MemoryBytes(); }

  Value GetValue(size_t i) const override {
    int64_t v = WrapAddInt64(base_, static_cast<int64_t>(packed_.Get(i)));
    return type_ == TypeKind::kDate ? Value::Date(v) : Value::Int64(v);
  }

  bool DecodeInt64s(std::vector<int64_t>* out) const override {
    for (size_t i = 0; i < packed_.size(); ++i) {
      out->push_back(WrapAddInt64(base_, static_cast<int64_t>(packed_.Get(i))));
    }
    return true;
  }

 private:
  TypeKind type_;
  int64_t base_;
  BitPackedArray packed_;
};

bool HasNulls(const std::vector<Value>& values) {
  for (const Value& v : values) {
    if (v.is_null()) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoder entry points
// ---------------------------------------------------------------------------

Encoding ChooseEncoding(TypeKind type, const std::vector<Value>& values) {
  if (values.empty() || HasNulls(values)) return Encoding::kGeneric;
  switch (type) {
    case TypeKind::kBool:
      return Encoding::kBitPacked;
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      size_t runs = 1;
      int64_t lo = values[0].int64_v();
      int64_t hi = lo;
      for (size_t i = 1; i < values.size(); ++i) {
        int64_t v = values[i].int64_v();
        if (v != values[i - 1].int64_v()) ++runs;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      // RLE pays off when average run length >= 4.
      if (runs * 4 <= values.size()) return Encoding::kRunLength;
      uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      int width = BitPackedArray::WidthFor(range == 0 ? 1 : range);
      if (width <= 24) return Encoding::kBitPacked;
      return Encoding::kPlain;
    }
    case TypeKind::kDouble:
      return Encoding::kPlain;
    case TypeKind::kString: {
      std::unordered_set<std::string_view> distinct;
      for (const Value& v : values) {
        distinct.insert(v.str());
        if (distinct.size() > DictStringChunk::kMaxDict) {
          return Encoding::kPlain;
        }
      }
      // Dictionary pays off when values repeat.
      if (distinct.size() * 2 <= values.size()) return Encoding::kDictionary;
      return Encoding::kPlain;
    }
    case TypeKind::kNull:
      return Encoding::kGeneric;
  }
  return Encoding::kGeneric;
}

std::unique_ptr<ColumnChunk> EncodeColumn(TypeKind type,
                                          const std::vector<Value>& values,
                                          Encoding encoding) {
  if (encoding != Encoding::kGeneric && (values.empty() || HasNulls(values))) {
    encoding = Encoding::kGeneric;
  }
  switch (encoding) {
    case Encoding::kGeneric:
      return std::make_unique<GenericChunk>(type, values);
    case Encoding::kPlain:
      switch (type) {
        case TypeKind::kInt64:
        case TypeKind::kDate: {
          std::vector<int64_t> raw;
          raw.reserve(values.size());
          for (const Value& v : values) raw.push_back(v.int64_v());
          return std::make_unique<Int64PlainChunk>(type, std::move(raw));
        }
        case TypeKind::kDouble: {
          std::vector<double> raw;
          raw.reserve(values.size());
          for (const Value& v : values) raw.push_back(v.double_v());
          return std::make_unique<DoublePlainChunk>(std::move(raw));
        }
        case TypeKind::kString:
          return std::make_unique<StringPlainChunk>(values);
        default:
          return std::make_unique<GenericChunk>(type, values);
      }
    case Encoding::kRunLength:
      if (type == TypeKind::kInt64 || type == TypeKind::kDate) {
        return std::make_unique<Int64RleChunk>(type, values);
      }
      return std::make_unique<GenericChunk>(type, values);
    case Encoding::kDictionary:
      if (type == TypeKind::kString) {
        return std::make_unique<DictStringChunk>(values);
      }
      return std::make_unique<GenericChunk>(type, values);
    case Encoding::kBitPacked:
      if (type == TypeKind::kBool) {
        return std::make_unique<BoolBitChunk>(values);
      }
      if (type == TypeKind::kInt64 || type == TypeKind::kDate) {
        int64_t lo = values[0].int64_v();
        int64_t hi = lo;
        for (const Value& v : values) {
          lo = std::min(lo, v.int64_v());
          hi = std::max(hi, v.int64_v());
        }
        uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
        int width = BitPackedArray::WidthFor(range == 0 ? 1 : range);
        return std::make_unique<Int64BitPackedChunk>(type, values, lo, width);
      }
      return std::make_unique<GenericChunk>(type, values);
  }
  return std::make_unique<GenericChunk>(type, values);
}

std::unique_ptr<ColumnChunk> EncodeColumnAuto(TypeKind type,
                                              const std::vector<Value>& values,
                                              ColumnStats* stats) {
  if (stats != nullptr) {
    for (const Value& v : values) stats->Update(v);
  }
  return EncodeColumn(type, values, ChooseEncoding(type, values));
}

}  // namespace shark
