#ifndef SHARK_COLUMNAR_COMPRESSION_H_
#define SHARK_COLUMNAR_COMPRESSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shark {

/// Fixed-width bit-packed array of unsigned integers; the storage primitive
/// behind boolean columns, dictionary codes and bit-packed integer columns.
class BitPackedArray {
 public:
  /// width in [1, 64].
  explicit BitPackedArray(int width);

  int width() const { return width_; }
  size_t size() const { return size_; }

  void Append(uint64_t v);
  uint64_t Get(size_t i) const;

  uint64_t MemoryBytes() const { return 24 + words_.size() * 8; }

  /// Minimum width able to represent `max_value` (>=1).
  static int WidthFor(uint64_t max_value);

 private:
  int width_;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace shark

#endif  // SHARK_COLUMNAR_COMPRESSION_H_
