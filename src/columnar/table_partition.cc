#include "columnar/table_partition.h"

#include "common/logging.h"

namespace shark {

std::shared_ptr<const TablePartition> TablePartition::FromRows(
    const Schema& schema, const std::vector<Row>& rows) {
  auto part = std::shared_ptr<TablePartition>(new TablePartition());
  part->num_rows_ = rows.size();
  int ncols = schema.num_fields();
  part->stats_.resize(static_cast<size_t>(ncols));
  part->columns_.reserve(static_cast<size_t>(ncols));
  std::vector<Value> column;
  column.reserve(rows.size());
  for (int c = 0; c < ncols; ++c) {
    column.clear();
    for (const Row& r : rows) {
      SHARK_CHECK(r.size() == ncols);
      column.push_back(r.Get(c));
    }
    part->columns_.push_back(EncodeColumnAuto(
        schema.field(c).type, column, &part->stats_[static_cast<size_t>(c)]));
  }
  return part;
}

uint64_t TablePartition::MemoryBytes() const {
  uint64_t total = 64;
  for (const auto& c : columns_) total += c->MemoryBytes();
  return total;
}

std::vector<Row> TablePartition::ToRows(const std::vector<int>* wanted) const {
  std::vector<Row> rows(num_rows_);
  for (auto& r : rows) r.fields.resize(columns_.size());
  auto decode_column = [&](int c) {
    std::vector<Value> values;
    values.reserve(num_rows_);
    columns_[static_cast<size_t>(c)]->Decode(&values);
    for (size_t i = 0; i < num_rows_; ++i) {
      rows[i].fields[static_cast<size_t>(c)] = std::move(values[i]);
    }
  };
  if (wanted == nullptr) {
    for (int c = 0; c < num_columns(); ++c) decode_column(c);
  } else {
    for (int c : *wanted) decode_column(c);
  }
  return rows;
}

Row TablePartition::GetRow(size_t i) const {
  Row r;
  r.fields.reserve(columns_.size());
  for (const auto& c : columns_) r.fields.push_back(c->GetValue(i));
  return r;
}

}  // namespace shark
