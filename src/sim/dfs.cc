#include "sim/dfs.h"

#include <algorithm>

#include "common/logging.h"

namespace shark {

uint64_t DfsFile::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& b : blocks) total += b.bytes;
  return total;
}

uint64_t DfsFile::TotalRows() const {
  uint64_t total = 0;
  for (const auto& b : blocks) total += b.rows;
  return total;
}

Dfs::Dfs(int num_nodes, int replication, uint64_t seed)
    : num_nodes_(num_nodes),
      replication_(std::min(replication, num_nodes)),
      rng_(seed) {
  SHARK_CHECK(num_nodes > 0 && replication > 0);
}

Status Dfs::CreateFile(const std::string& name, DfsFormat format,
                       std::vector<DfsBlock> blocks) {
  if (files_.count(name) > 0) {
    return Status::AlreadyExists("dfs file exists: " + name);
  }
  // Assign replicas: first replica rotates round-robin for even spread, the
  // rest are random distinct nodes (HDFS rack-unaware placement).
  // A caller may pre-set the first replica (a writer stores one copy
  // locally, HDFS-style); remaining replicas are assigned here.
  size_t index = 0;
  for (auto& block : blocks) {
    if (block.replicas.empty()) {
      int primary = static_cast<int>(
          (rng_.Uniform(static_cast<uint64_t>(num_nodes_)) + index) %
          static_cast<uint64_t>(num_nodes_));
      block.replicas.push_back(primary);
    }
    while (static_cast<int>(block.replicas.size()) < replication_) {
      int candidate = static_cast<int>(rng_.Uniform(static_cast<uint64_t>(num_nodes_)));
      if (std::find(block.replicas.begin(), block.replicas.end(), candidate) ==
          block.replicas.end()) {
        block.replicas.push_back(candidate);
      }
    }
    ++index;
  }
  DfsFile file;
  file.name = name;
  file.format = format;
  file.blocks = std::move(blocks);
  files_.emplace(name, std::move(file));
  return Status::OK();
}

Result<const DfsFile*> Dfs::GetFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("dfs file not found: " + name);
  return &it->second;
}

bool Dfs::Exists(const std::string& name) const { return files_.count(name) > 0; }

Status Dfs::DeleteFile(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("dfs file not found: " + name);
  files_.erase(it);
  return Status::OK();
}

}  // namespace shark
