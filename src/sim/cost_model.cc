#include "sim/cost_model.h"

#include <cmath>

namespace shark {

EngineProfile EngineProfile::Shark() {
  EngineProfile p;
  p.name = "shark";
  p.task_launch_overhead_sec = 0.005;
  p.heartbeat_interval_sec = 0.0;
  p.shuffle_through_disk = false;
  p.sort_before_shuffle = false;
  p.materialize_stages_to_dfs = false;
  p.memory_store = true;
  p.pde_enabled = true;
  return p;
}

EngineProfile EngineProfile::Hadoop() {
  EngineProfile p;
  p.name = "hadoop";
  // §7 "Task Scheduling Cost": per-task OS process launch plus submission
  // latency; combined with 3 s heartbeat assignment this yields the paper's
  // observed 5-10 s task startup delays.
  p.task_launch_overhead_sec = 3.5;
  p.heartbeat_interval_sec = 3.0;
  p.shuffle_through_disk = true;
  p.sort_before_shuffle = true;
  p.sort_full_map_input = true;
  p.cpu_overhead_multiplier = 2.0;
  p.materialize_stages_to_dfs = true;
  p.memory_store = false;
  p.pde_enabled = false;
  return p;
}

void TaskWork::Add(const TaskWork& other) {
  disk_read_bytes += other.disk_read_bytes;
  disk_seeks += other.disk_seeks;
  net_read_bytes += other.net_read_bytes;
  mem_read_bytes += other.mem_read_bytes;
  text_deser_bytes += other.text_deser_bytes;
  binary_deser_bytes += other.binary_deser_bytes;
  ser_bytes += other.ser_bytes;
  rows_processed += other.rows_processed;
  hash_records += other.hash_records;
  sort_records += other.sort_records;
  disk_write_bytes += other.disk_write_bytes;
  dfs_write_bytes += other.dfs_write_bytes;
  flops += other.flops;
  cpu_seconds += other.cpu_seconds;
}

double CostModel::WorkSeconds(const TaskWork& work, const EngineProfile& profile,
                              double scale) const {
  double t = 0.0;
  auto b = [scale](uint64_t v) { return static_cast<double>(v) * scale; };

  // Disk and network are per-node resources shared by all cores; a task is
  // charged its fair share assuming the node's other cores are also busy
  // (the common case in full-cluster scans/shuffles).
  double disk_bw = hw_.disk_bw_bytes_per_sec / hw_.cores_per_node;
  double net_bw = hw_.net_bw_bytes_per_sec / hw_.cores_per_node;

  t += b(work.disk_read_bytes) / disk_bw;
  t += static_cast<double>(work.disk_seeks) * hw_.disk_seek_sec;
  t += b(work.net_read_bytes) / net_bw;
  t += b(work.mem_read_bytes) / hw_.mem_scan_bytes_per_sec;
  t += b(work.text_deser_bytes) / hw_.text_deser_bytes_per_sec;
  t += b(work.binary_deser_bytes) / hw_.binary_deser_bytes_per_sec;
  t += b(work.ser_bytes) / hw_.ser_bytes_per_sec;
  double cpu_mult = profile.cpu_overhead_multiplier;
  t += b(work.rows_processed) * hw_.row_cpu_sec * cpu_mult;
  t += b(work.hash_records) * hw_.hash_record_sec * cpu_mult;

  double n = b(work.sort_records);
  if (n > 1.0) t += hw_.sort_record_sec * n * std::log2(n) * cpu_mult;

  t += b(work.disk_write_bytes) / disk_bw;

  // A DFS write streams one replica to local disk and pipelines the other
  // replicas over the network; the slower of the two paths bounds it.
  double dfs = b(work.dfs_write_bytes);
  if (dfs > 0.0) {
    double disk_time = dfs / disk_bw;
    double net_time =
        dfs * static_cast<double>(profile.dfs_replication - 1) / net_bw;
    t += disk_time + net_time;
  }

  t += b(work.flops) * hw_.flop_sec;
  t += work.cpu_seconds * scale;
  return t;
}

double CostModel::NetSeconds(uint64_t bytes, double scale) const {
  return static_cast<double>(bytes) * scale / hw_.net_bw_bytes_per_sec;
}

}  // namespace shark
