#ifndef SHARK_SIM_CLUSTER_METRICS_H_
#define SHARK_SIM_CLUSTER_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"

namespace shark {

/// One virtual-time sample of cluster state, recorded by the scheduler's
/// event loop (Figures 5-13 of the paper are explained by exactly these
/// curves: where cores sit busy, how deep the pending queue runs, how much
/// memory the cache and shuffle buffers hold).
struct ClusterSample {
  double time = 0.0;
  int pending_tasks = 0;          // scheduler pending-queue depth
  int running_tasks = 0;          // in-flight task attempts
  int busy_cores_total = 0;
  int alive_nodes = 0;
  uint64_t cache_bytes = 0;       // block-cache resident bytes, all nodes
  uint64_t shuffle_bytes = 0;     // memory-served map-output bytes, all nodes
  std::vector<int> busy_per_node; // busy cores per node at `time`
};

/// Bounded virtual-time time series. Recording is driven by scheduler
/// events; when the series outgrows its budget it decimates itself (drops
/// every other sample and doubles the minimum sampling interval), so memory
/// stays O(max_samples) for arbitrarily long runs while the curve keeps its
/// shape. Purely a function of the virtual-time event sequence, hence
/// byte-identical across host thread counts.
class ClusterTimeline {
 public:
  explicit ClusterTimeline(size_t max_samples = 1024)
      : max_samples_(max_samples < 16 ? 16 : max_samples) {}

  /// Cheap pre-check: false when `now` falls inside the current minimum
  /// sampling interval (callers skip building the sample entirely).
  bool ShouldSample(double now) const;

  /// Records a sample; a sample at the same instant as the last one
  /// replaces it (latest state at that time wins).
  void Record(ClusterSample sample);

  const std::vector<ClusterSample>& samples() const { return samples_; }
  double min_interval() const { return min_interval_; }
  void Clear();

 private:
  size_t max_samples_;
  double min_interval_ = 0.0;
  std::vector<ClusterSample> samples_;
};

/// Per-stage skew/straggler report: task-duration and shuffle-bucket
/// distributions with named culprits — the "why is this stage slow" signal
/// the paper reads off its cluster utilization plots (§6, Figures 8/9).
struct StageSkewReport {
  int seq = 0;                  // stage ordinal within this context
  std::string label;
  double start_time = 0.0;
  double end_time = 0.0;
  int tasks = 0;                // committed tasks
  double dur_p50 = 0.0;
  double dur_p95 = 0.0;
  double dur_max = 0.0;
  double dur_skew = 0.0;        // max / p50 (1.0 = perfectly even)
  int straggler_partition = -1; // partition of the slowest committed task
  int straggler_node = -1;      // node it ran on
  int speculative = 0;
  int failed = 0;
  // Shuffle-bucket side (map stages only; buckets == 0 otherwise).
  int buckets = 0;
  uint64_t bucket_p50 = 0;
  uint64_t bucket_p95 = 0;
  uint64_t bucket_max = 0;
  double bucket_skew = 0.0;     // max / mean
  int culprit_bucket = -1;      // index of the fattest bucket
};

/// Point-in-time SLO readout for one session (or the whole server): live
/// quantiles over the query latency / queued-time histograms. Virtual
/// quantities are deterministic; host quantiles stay 0 unless wall-clock
/// latencies were recorded (streaming serving only).
struct SessionSloSnapshot {
  uint64_t completed = 0;
  uint64_t failed = 0;
  double latency_p50 = 0.0;  // arrival-to-completion, virtual seconds
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double queued_p50 = 0.0;  // admission-queue wait, virtual seconds
  double queued_p99 = 0.0;
  double host_p50 = 0.0;  // wall-clock seconds (streaming mode only)
  double host_p99 = 0.0;
};

/// Computes duration quantiles/culprits from committed-task observations.
/// `durations`, `partitions` and `nodes` are parallel arrays.
StageSkewReport ComputeStageSkew(const std::string& label, int seq,
                                 double start_time, double end_time,
                                 const std::vector<double>& durations,
                                 const std::vector<int>& partitions,
                                 const std::vector<int>& nodes);

/// Folds a map stage's observed per-bucket bytes into an existing report.
void AnnotateBucketSkew(const std::vector<uint64_t>& bucket_bytes,
                        StageSkewReport* report);

/// Cluster-wide observability: a MetricsRegistry wired into every layer
/// (scheduler, memory manager, shuffle manager, block cache, cost model), a
/// virtual-time ClusterTimeline, and per-stage skew reports. Owned by the
/// ClusterContext; all mutation happens on the driver thread inside the
/// scheduler's event loop, so everything is deterministic under
/// host-parallel task execution.
///
/// Layering: this lives in sim/ and must not see rdd/ types, so upper
/// layers are observed through registered callbacks (cache bytes, shuffle
/// ledger bytes) and through explicit counter hooks the scheduler calls.
class ClusterMetrics {
 public:
  ClusterMetrics(int num_nodes, const HardwareModel& hardware);

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  ClusterTimeline& timeline() { return timeline_; }
  const std::vector<StageSkewReport>& stage_reports() const {
    return stage_reports_;
  }
  /// The report OnStageEnd pushed most recently (nullptr before the first
  /// stage). The scheduler annotates a just-finished map stage's bucket skew
  /// through this.
  StageSkewReport* last_stage_report() {
    return stage_reports_.empty() ? nullptr : &stage_reports_.back();
  }

  // ---- Wiring (context construction) --------------------------------------

  /// Total block-cache resident bytes across the cluster.
  void set_cache_bytes_fn(std::function<uint64_t()> fn);
  /// Per-node block-cache resident bytes (per-node memory gauges).
  void set_cache_bytes_on_node_fn(std::function<uint64_t(int)> fn);
  /// Total / per-node memory-served shuffle map-output bytes.
  void set_shuffle_bytes_fn(std::function<uint64_t()> fn);
  void set_shuffle_bytes_on_node_fn(std::function<uint64_t(int)> fn);

  // ---- Scheduler hooks (driver thread, event-loop order) ------------------

  /// Samples cluster state at virtual time `now`. Skipped cheaply when the
  /// timeline's minimum interval has not elapsed, unless `force`.
  void Sample(double now, const Cluster& cluster, int pending_tasks,
              int running_tasks, bool force);

  /// One task attempt launched; `locality` is 0=preferred, 1=remote, 2=any.
  void OnTaskLaunch(int locality, bool speculative, const TaskWork& work,
                    double work_seconds);
  void OnTaskCommitted(double duration_sec);
  void OnTaskFailed();        // aborted by node death
  void OnTaskMissingInput();  // discarded, re-run after lineage recovery
  void OnNodeDeath();
  void OnMapOutputDiskServe(uint64_t bytes);
  void OnMapTasksRecovered(int count);
  void OnCacheTraffic(uint64_t hit_blocks, uint64_t hit_bytes,
                      uint64_t miss_blocks, uint64_t miss_bytes);
  void OnCacheEviction(uint64_t blocks, uint64_t bytes);
  void OnSpill(uint64_t bytes, uint32_t partitions);
  void OnReservationDenied(uint64_t count = 1);

  // ---- Job admission hooks (JobManager, driver thread) --------------------

  /// A job entered the admission queue instead of starting; `reason` is the
  /// gate that deferred it ("memory" or "concurrency").
  void OnJobQueued(const std::string& reason);
  /// A job was admitted after `queue_delay_sec` in the queue (0 when it was
  /// admitted on arrival).
  void OnJobAdmitted(double queue_delay_sec);
  /// An admitted job finished; latency is admission-to-completion virtual
  /// seconds.
  void OnJobFinished(bool ok, double latency_sec);
  /// Live admission-state gauges, kept by the JobManager.
  void SetJobsRunning(int64_t running);
  void SetJobsQueued(int64_t queued);

  // ---- Query SLO hooks (JobManager, driver thread) ------------------------

  /// A query finished: feeds the server-wide and (when `session` is
  /// non-empty) per-session latency SLO histograms. `latency_sec` is
  /// arrival-to-completion and `queue_delay_sec` the admission wait, both
  /// virtual seconds (deterministic); `host_seconds` is wall-clock
  /// end-to-end time, or < 0 when not measured (batch mode), keeping the
  /// exposition bit-identical across host_threads settings.
  void OnQueryComplete(const std::string& session, bool ok, double latency_sec,
                       double queue_delay_sec, double host_seconds);

  /// Server-wide SLO quantiles over every completed query.
  SessionSloSnapshot ServerSlo() const;
  /// Per-session SLO quantiles; false if the session never completed a query.
  bool SessionSlo(const std::string& session, SessionSloSnapshot* out) const;
  /// Sessions with at least one completed query, in name order.
  std::vector<std::string> SloSessions() const;

  /// Closes a stage: computes the skew report from committed-task
  /// observations and returns it for optional annotation (bucket bytes).
  StageSkewReport* OnStageEnd(const std::string& label, double start_time,
                              double end_time,
                              const std::vector<double>& durations,
                              const std::vector<int>& partitions,
                              const std::vector<int>& nodes, int speculative,
                              int failed);

  // ---- Export -------------------------------------------------------------

  /// Prometheus text exposition of every registered metric at virtual time
  /// `now` (refreshes the per-node busy-core gauges against the cluster).
  std::string PrometheusText(double now, const Cluster& cluster);

  /// The timeline + skew reports + counter totals as one JSON document —
  /// the `metrics` section benches attach to BENCH_*.json and the schema
  /// tools/bench_gate validates.
  std::string TimelineJson() const;

  /// Clears the timeline and skew reports (counters are cumulative and
  /// survive). Called when the context's virtual clock resets — a timeline
  /// cannot run backwards.
  void OnClockReset();

 private:
  int num_nodes_;
  MetricsRegistry registry_;
  ClusterTimeline timeline_;
  std::vector<StageSkewReport> stage_reports_;
  int next_stage_seq_ = 0;
  uint64_t dropped_stage_reports_ = 0;

  std::function<uint64_t()> cache_bytes_fn_;
  std::function<uint64_t(int)> cache_bytes_on_node_fn_;
  std::function<uint64_t()> shuffle_bytes_fn_;
  std::function<uint64_t(int)> shuffle_bytes_on_node_fn_;

  // Scheduler counters.
  Counter* tasks_launched_;
  Counter* tasks_committed_;
  Counter* tasks_speculative_;
  Counter* tasks_failed_;
  Counter* tasks_missing_input_;
  Counter* map_tasks_recovered_;
  Counter* node_deaths_;
  Counter* locality_preferred_;
  Counter* locality_remote_;
  Counter* locality_any_;
  Counter* stages_total_;
  // Data-movement counters (resolved TaskWork, charged at launch).
  Counter* disk_read_bytes_;
  Counter* disk_write_bytes_;
  Counter* net_read_bytes_;
  Counter* mem_read_bytes_;
  Counter* dfs_write_bytes_;
  // Memory manager.
  Counter* reservations_denied_;
  Counter* spill_bytes_;
  Counter* spill_partitions_;
  // Shuffle manager.
  Counter* map_outputs_disk_;
  Counter* map_output_disk_bytes_;
  // Block cache.
  Counter* cache_hit_blocks_;
  Counter* cache_hit_bytes_;
  Counter* cache_miss_blocks_;
  Counter* cache_miss_bytes_;
  Counter* cache_evicted_blocks_;
  Counter* cache_evicted_bytes_;
  // Job admission (JobManager).
  Counter* jobs_queued_total_;
  Counter* jobs_queued_memory_;
  Counter* jobs_queued_concurrency_;
  Counter* jobs_admitted_;
  Counter* jobs_completed_;
  Counter* jobs_failed_;
  Gauge* jobs_running_gauge_;
  Gauge* jobs_queued_gauge_;
  // Distributions.
  HistogramMetric* task_duration_hist_;
  HistogramMetric* job_queue_delay_hist_;
  HistogramMetric* job_latency_hist_;
  // Query SLO series: one set server-wide, one per session (registered
  // lazily on first completion — deterministic, since completions happen in
  // event-loop order on the driver thread).
  struct QuerySloSeries {
    Counter* completed = nullptr;
    Counter* failed = nullptr;
    HistogramMetric* latency = nullptr;  // virtual arrival-to-completion
    HistogramMetric* queued = nullptr;   // virtual admission wait
    HistogramMetric* host = nullptr;     // wall-clock (streaming only)
  };
  QuerySloSeries MakeQuerySloSeries(const std::string& labels);
  static SessionSloSnapshot SnapshotSeries(const QuerySloSeries& s);
  QuerySloSeries server_queries_;
  std::map<std::string, QuerySloSeries> session_queries_;
  // Per-node busy-core gauges, refreshed by PrometheusText.
  std::vector<Gauge*> busy_core_gauges_;
};

}  // namespace shark

#endif  // SHARK_SIM_CLUSTER_METRICS_H_
