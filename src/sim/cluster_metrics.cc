#include "sim/cluster_metrics.h"

#include <algorithm>

#include "common/json_writer.h"

namespace shark {

namespace {

/// Hard cap on retained skew reports; long bench loops keep the most recent
/// window and count the rest as dropped (reported in the JSON export so
/// truncation is never silent).
constexpr size_t kMaxStageReports = 512;

/// Nearest-rank quantile of a sorted vector.
template <typename T>
T SortedQuantile(const std::vector<T>& sorted, double q) {
  if (sorted.empty()) return T{};
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(rank + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

// ---------------------------------------------------------------------------
// ClusterTimeline
// ---------------------------------------------------------------------------

bool ClusterTimeline::ShouldSample(double now) const {
  if (samples_.empty()) return true;
  double last = samples_.back().time;
  return now <= last || now >= last + min_interval_;
}

void ClusterTimeline::Record(ClusterSample sample) {
  if (!samples_.empty() && sample.time <= samples_.back().time) {
    samples_.back() = std::move(sample);  // latest state at this instant wins
    return;
  }
  if (!samples_.empty() && sample.time < samples_.back().time + min_interval_) {
    return;
  }
  samples_.push_back(std::move(sample));
  if (samples_.size() >= max_samples_ * 2) {
    // Decimate: keep every other sample, double the minimum interval. The
    // whole history stays bounded while preserving the curve's shape.
    size_t kept = 0;
    for (size_t i = 0; i < samples_.size(); i += 2) {
      samples_[kept++] = std::move(samples_[i]);
    }
    samples_.resize(kept);
    double span = samples_.back().time - samples_.front().time;
    double derived = span / static_cast<double>(max_samples_);
    min_interval_ = std::max(min_interval_ * 2.0, derived);
    if (min_interval_ <= 0.0) min_interval_ = 1e-6;
  }
}

void ClusterTimeline::Clear() {
  samples_.clear();
  min_interval_ = 0.0;
}

// ---------------------------------------------------------------------------
// Skew analyzer
// ---------------------------------------------------------------------------

StageSkewReport ComputeStageSkew(const std::string& label, int seq,
                                 double start_time, double end_time,
                                 const std::vector<double>& durations,
                                 const std::vector<int>& partitions,
                                 const std::vector<int>& nodes) {
  StageSkewReport r;
  r.seq = seq;
  r.label = label;
  r.start_time = start_time;
  r.end_time = end_time;
  r.tasks = static_cast<int>(durations.size());
  if (durations.empty()) return r;
  std::vector<double> sorted = durations;
  std::sort(sorted.begin(), sorted.end());
  r.dur_p50 = SortedQuantile(sorted, 0.5);
  r.dur_p95 = SortedQuantile(sorted, 0.95);
  r.dur_max = sorted.back();
  r.dur_skew = r.dur_p50 > 0.0 ? r.dur_max / r.dur_p50 : 0.0;
  size_t worst = 0;
  for (size_t i = 1; i < durations.size(); ++i) {
    if (durations[i] > durations[worst]) worst = i;
  }
  if (worst < partitions.size()) r.straggler_partition = partitions[worst];
  if (worst < nodes.size()) r.straggler_node = nodes[worst];
  return r;
}

void AnnotateBucketSkew(const std::vector<uint64_t>& bucket_bytes,
                        StageSkewReport* report) {
  report->buckets = static_cast<int>(bucket_bytes.size());
  if (bucket_bytes.empty()) return;
  std::vector<uint64_t> sorted = bucket_bytes;
  std::sort(sorted.begin(), sorted.end());
  report->bucket_p50 = SortedQuantile(sorted, 0.5);
  report->bucket_p95 = SortedQuantile(sorted, 0.95);
  report->bucket_max = sorted.back();
  uint64_t total = 0;
  for (uint64_t b : sorted) total += b;
  double mean =
      static_cast<double>(total) / static_cast<double>(sorted.size());
  report->bucket_skew =
      mean > 0.0 ? static_cast<double>(report->bucket_max) / mean : 0.0;
  size_t culprit = 0;
  for (size_t i = 1; i < bucket_bytes.size(); ++i) {
    if (bucket_bytes[i] > bucket_bytes[culprit]) culprit = i;
  }
  report->culprit_bucket = static_cast<int>(culprit);
}

// ---------------------------------------------------------------------------
// ClusterMetrics
// ---------------------------------------------------------------------------

ClusterMetrics::ClusterMetrics(int num_nodes, const HardwareModel& hardware)
    : num_nodes_(num_nodes) {
  auto c = [&](const char* name, const char* help) {
    return registry_.RegisterCounter(name, help);
  };
  tasks_launched_ = c("shark_tasks_launched_total",
                      "Task attempts launched (retries and speculation included)");
  tasks_committed_ = c("shark_tasks_committed_total",
                       "Task attempts whose output was accepted");
  tasks_speculative_ = c("shark_tasks_speculative_total",
                         "Speculative duplicate launches (straggler mitigation)");
  tasks_failed_ =
      c("shark_tasks_failed_total", "Task attempts aborted by node death");
  tasks_missing_input_ =
      c("shark_tasks_missing_input_total",
        "Task results discarded for lost shuffle input (re-run after recovery)");
  map_tasks_recovered_ = c("shark_map_tasks_recovered_total",
                           "Map outputs recomputed from lineage");
  node_deaths_ = c("shark_node_deaths_total", "Simulated node failures applied");
  locality_preferred_ = registry_.RegisterCounter(
      "shark_task_locality_total", "Task launches by locality class",
      "class=\"preferred\"");
  locality_remote_ = registry_.RegisterCounter("shark_task_locality_total", "",
                                               "class=\"remote\"");
  locality_any_ =
      registry_.RegisterCounter("shark_task_locality_total", "", "class=\"any\"");
  stages_total_ = c("shark_stages_total", "Task sets executed (incl. recovery)");

  disk_read_bytes_ =
      c("shark_disk_read_bytes_total", "Local-disk bytes read by tasks");
  disk_write_bytes_ =
      c("shark_disk_write_bytes_total", "Local-disk bytes written by tasks");
  net_read_bytes_ = c("shark_net_read_bytes_total",
                      "Bytes fetched over the network (shuffle + broadcast)");
  mem_read_bytes_ =
      c("shark_mem_read_bytes_total", "In-memory columnar bytes scanned");
  dfs_write_bytes_ = c("shark_dfs_write_bytes_total",
                       "Replicated DFS bytes written (pre-replication)");

  reservations_denied_ = c("shark_mem_reservations_denied_total",
                           "Working-set reservations denied (operator spilled)");
  spill_bytes_ =
      c("shark_mem_spill_bytes_total", "Operator working-set bytes spilled");
  spill_partitions_ = c("shark_mem_spill_partitions_total",
                        "Grace-hash partitions / external sort runs created");

  map_outputs_disk_ = c("shark_shuffle_outputs_disk_total",
                        "Map outputs flipped to disk serving (memory pressure)");
  map_output_disk_bytes_ = c("shark_shuffle_output_disk_bytes_total",
                             "Bytes of map output served from disk");

  cache_hit_blocks_ =
      c("shark_cache_hit_blocks_total", "Block-cache hits (committed tasks)");
  cache_hit_bytes_ = c("shark_cache_hit_bytes_total", "Block-cache bytes hit");
  cache_miss_blocks_ =
      c("shark_cache_miss_blocks_total", "Block-cache misses (committed tasks)");
  cache_miss_bytes_ = c("shark_cache_miss_bytes_total",
                        "Bytes recomputed because the cache missed");
  cache_evicted_blocks_ =
      c("shark_cache_evicted_blocks_total", "Blocks evicted by per-node LRU");
  cache_evicted_bytes_ =
      c("shark_cache_evicted_bytes_total", "Bytes evicted by per-node LRU");

  jobs_queued_total_ = c("shark_jobs_queued_total",
                         "Jobs deferred by admission control (any reason)");
  jobs_queued_memory_ = registry_.RegisterCounter(
      "shark_jobs_queued_reason_total", "Jobs deferred by admission, by gate",
      "reason=\"memory\"");
  jobs_queued_concurrency_ = registry_.RegisterCounter(
      "shark_jobs_queued_reason_total", "", "reason=\"concurrency\"");
  jobs_admitted_ = c("shark_jobs_admitted_total",
                     "Jobs admitted to the shared event loop");
  jobs_completed_ = c("shark_jobs_completed_total", "Jobs finished OK");
  jobs_failed_ = c("shark_jobs_failed_total", "Jobs finished with an error");
  jobs_running_gauge_ = registry_.RegisterGauge(
      "shark_jobs_running", "Admitted jobs currently in flight");
  jobs_queued_gauge_ = registry_.RegisterGauge(
      "shark_jobs_queued", "Jobs waiting in the admission queue");

  server_queries_ = MakeQuerySloSeries("");

  task_duration_hist_ = registry_.RegisterHistogram(
      "shark_task_duration_seconds", "Committed task durations (virtual)");
  job_queue_delay_hist_ = registry_.RegisterHistogram(
      "shark_job_queue_delay_seconds",
      "Admission-queue wait per admitted job (virtual)");
  job_latency_hist_ = registry_.RegisterHistogram(
      "shark_job_latency_seconds",
      "Admission-to-completion latency per job (virtual)");

  // Hardware-model bandwidth constants exported once, so a scrape is
  // self-describing (utilization curves can be read against capacity).
  registry_
      .RegisterGauge("shark_hw_disk_bw_bytes_per_sec",
                     "Modeled sequential disk bandwidth per node")
      ->Set(hardware.disk_bw_bytes_per_sec);
  registry_
      .RegisterGauge("shark_hw_net_bw_bytes_per_sec",
                     "Modeled per-node network bandwidth")
      ->Set(hardware.net_bw_bytes_per_sec);
  registry_
      .RegisterGauge("shark_hw_mem_scan_bytes_per_sec",
                     "Modeled in-memory columnar scan rate per core")
      ->Set(hardware.mem_scan_bytes_per_sec);

  busy_core_gauges_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    busy_core_gauges_.push_back(registry_.RegisterGauge(
        "shark_node_busy_cores", n == 0 ? "Cores busy at exposition time" : "",
        "node=\"" + std::to_string(n) + "\""));
  }
}

void ClusterMetrics::set_cache_bytes_fn(std::function<uint64_t()> fn) {
  cache_bytes_fn_ = std::move(fn);
  registry_.RegisterCallbackGauge(
      "shark_cache_resident_bytes", "Block-cache resident bytes, all nodes",
      [fn = cache_bytes_fn_] { return static_cast<double>(fn()); });
}

void ClusterMetrics::set_cache_bytes_on_node_fn(
    std::function<uint64_t(int)> fn) {
  cache_bytes_on_node_fn_ = std::move(fn);
}

void ClusterMetrics::set_shuffle_bytes_fn(std::function<uint64_t()> fn) {
  shuffle_bytes_fn_ = std::move(fn);
  registry_.RegisterCallbackGauge(
      "shark_shuffle_resident_bytes",
      "Memory-served map-output bytes, all nodes",
      [fn = shuffle_bytes_fn_] { return static_cast<double>(fn()); });
}

void ClusterMetrics::set_shuffle_bytes_on_node_fn(
    std::function<uint64_t(int)> fn) {
  shuffle_bytes_on_node_fn_ = std::move(fn);
}

void ClusterMetrics::Sample(double now, const Cluster& cluster,
                            int pending_tasks, int running_tasks, bool force) {
  if (!force && !timeline_.ShouldSample(now)) return;
  ClusterSample s;
  s.time = now;
  s.pending_tasks = pending_tasks;
  s.running_tasks = running_tasks;
  s.alive_nodes = cluster.AliveNodes();
  s.busy_per_node.reserve(static_cast<size_t>(cluster.num_nodes()));
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    int busy = cluster.alive(n) ? cluster.BusyCores(n, now) : 0;
    s.busy_per_node.push_back(busy);
    s.busy_cores_total += busy;
  }
  if (cache_bytes_fn_) s.cache_bytes = cache_bytes_fn_();
  if (shuffle_bytes_fn_) s.shuffle_bytes = shuffle_bytes_fn_();
  timeline_.Record(std::move(s));
}

void ClusterMetrics::OnTaskLaunch(int locality, bool speculative,
                                  const TaskWork& work, double work_seconds) {
  tasks_launched_->Increment();
  if (speculative) tasks_speculative_->Increment();
  switch (locality) {
    case 0:
      locality_preferred_->Increment();
      break;
    case 1:
      locality_remote_->Increment();
      break;
    default:
      locality_any_->Increment();
      break;
  }
  disk_read_bytes_->Increment(work.disk_read_bytes);
  disk_write_bytes_->Increment(work.disk_write_bytes);
  net_read_bytes_->Increment(work.net_read_bytes);
  mem_read_bytes_->Increment(work.mem_read_bytes);
  dfs_write_bytes_->Increment(work.dfs_write_bytes);
  (void)work_seconds;
}

void ClusterMetrics::OnTaskCommitted(double duration_sec) {
  tasks_committed_->Increment();
  task_duration_hist_->Observe(duration_sec);
}

void ClusterMetrics::OnTaskFailed() { tasks_failed_->Increment(); }

void ClusterMetrics::OnTaskMissingInput() { tasks_missing_input_->Increment(); }

void ClusterMetrics::OnNodeDeath() { node_deaths_->Increment(); }

void ClusterMetrics::OnMapOutputDiskServe(uint64_t bytes) {
  map_outputs_disk_->Increment();
  map_output_disk_bytes_->Increment(bytes);
}

void ClusterMetrics::OnMapTasksRecovered(int count) {
  map_tasks_recovered_->Increment(static_cast<uint64_t>(count));
}

void ClusterMetrics::OnCacheTraffic(uint64_t hit_blocks, uint64_t hit_bytes,
                                    uint64_t miss_blocks, uint64_t miss_bytes) {
  cache_hit_blocks_->Increment(hit_blocks);
  cache_hit_bytes_->Increment(hit_bytes);
  cache_miss_blocks_->Increment(miss_blocks);
  cache_miss_bytes_->Increment(miss_bytes);
}

void ClusterMetrics::OnCacheEviction(uint64_t blocks, uint64_t bytes) {
  cache_evicted_blocks_->Increment(blocks);
  cache_evicted_bytes_->Increment(bytes);
}

void ClusterMetrics::OnSpill(uint64_t bytes, uint32_t partitions) {
  spill_bytes_->Increment(bytes);
  spill_partitions_->Increment(partitions);
}

void ClusterMetrics::OnReservationDenied(uint64_t count) {
  reservations_denied_->Increment(count);
}

void ClusterMetrics::OnJobQueued(const std::string& reason) {
  jobs_queued_total_->Increment();
  if (reason == "memory") {
    jobs_queued_memory_->Increment();
  } else {
    jobs_queued_concurrency_->Increment();
  }
}

void ClusterMetrics::OnJobAdmitted(double queue_delay_sec) {
  jobs_admitted_->Increment();
  job_queue_delay_hist_->Observe(queue_delay_sec);
}

void ClusterMetrics::OnJobFinished(bool ok, double latency_sec) {
  if (ok) {
    jobs_completed_->Increment();
  } else {
    jobs_failed_->Increment();
  }
  job_latency_hist_->Observe(latency_sec);
}

ClusterMetrics::QuerySloSeries ClusterMetrics::MakeQuerySloSeries(
    const std::string& labels) {
  QuerySloSeries s;
  s.completed = registry_.RegisterCounter(
      "shark_queries_completed_total",
      labels.empty() ? "Queries finished OK" : "", labels);
  s.failed = registry_.RegisterCounter(
      "shark_queries_failed_total",
      labels.empty() ? "Queries finished with an error" : "", labels);
  s.latency = registry_.RegisterHistogram(
      "shark_query_latency_seconds",
      labels.empty() ? "Arrival-to-completion query latency (virtual)" : "",
      labels);
  s.queued = registry_.RegisterHistogram(
      "shark_query_queued_seconds",
      labels.empty() ? "Admission-queue wait per query (virtual)" : "",
      labels);
  s.host = registry_.RegisterHistogram(
      "shark_query_host_seconds",
      labels.empty() ? "End-to-end wall-clock query latency (streaming serving)"
                     : "",
      labels);
  return s;
}

SessionSloSnapshot ClusterMetrics::SnapshotSeries(const QuerySloSeries& s) {
  SessionSloSnapshot out;
  out.completed = s.completed->value();
  out.failed = s.failed->value();
  auto q = [](const HistogramMetric* h, double quantile) {
    const ApproxHistogram& hist = h->histogram();
    return hist.total_count() > 0 ? hist.EstimateQuantile(quantile) : 0.0;
  };
  out.latency_p50 = q(s.latency, 0.50);
  out.latency_p95 = q(s.latency, 0.95);
  out.latency_p99 = q(s.latency, 0.99);
  out.queued_p50 = q(s.queued, 0.50);
  out.queued_p99 = q(s.queued, 0.99);
  out.host_p50 = q(s.host, 0.50);
  out.host_p99 = q(s.host, 0.99);
  return out;
}

void ClusterMetrics::OnQueryComplete(const std::string& session, bool ok,
                                     double latency_sec,
                                     double queue_delay_sec,
                                     double host_seconds) {
  auto feed = [&](QuerySloSeries& s) {
    if (ok) {
      s.completed->Increment();
    } else {
      s.failed->Increment();
    }
    s.latency->Observe(latency_sec);
    s.queued->Observe(queue_delay_sec);
    if (host_seconds >= 0.0) s.host->Observe(host_seconds);
  };
  feed(server_queries_);
  if (session.empty()) return;
  auto it = session_queries_.find(session);
  if (it == session_queries_.end()) {
    it = session_queries_
             .emplace(session, MakeQuerySloSeries(
                                   MetricsRegistry::Label("session", session)))
             .first;
  }
  feed(it->second);
}

SessionSloSnapshot ClusterMetrics::ServerSlo() const {
  return SnapshotSeries(server_queries_);
}

bool ClusterMetrics::SessionSlo(const std::string& session,
                                SessionSloSnapshot* out) const {
  auto it = session_queries_.find(session);
  if (it == session_queries_.end()) return false;
  *out = SnapshotSeries(it->second);
  return true;
}

std::vector<std::string> ClusterMetrics::SloSessions() const {
  std::vector<std::string> out;
  out.reserve(session_queries_.size());
  for (const auto& [name, series] : session_queries_) out.push_back(name);
  return out;
}

void ClusterMetrics::SetJobsRunning(int64_t running) {
  jobs_running_gauge_->Set(static_cast<double>(running));
}

void ClusterMetrics::SetJobsQueued(int64_t queued) {
  jobs_queued_gauge_->Set(static_cast<double>(queued));
}

StageSkewReport* ClusterMetrics::OnStageEnd(
    const std::string& label, double start_time, double end_time,
    const std::vector<double>& durations, const std::vector<int>& partitions,
    const std::vector<int>& nodes, int speculative, int failed) {
  stages_total_->Increment();
  StageSkewReport r = ComputeStageSkew(label, next_stage_seq_++, start_time,
                                       end_time, durations, partitions, nodes);
  r.speculative = speculative;
  r.failed = failed;
  if (stage_reports_.size() >= kMaxStageReports) {
    // Keep the most recent window: long bench loops care about the queries
    // they just ran, and the drop is reported, never silent.
    stage_reports_.erase(stage_reports_.begin());
    ++dropped_stage_reports_;
  }
  stage_reports_.push_back(std::move(r));
  return &stage_reports_.back();
}

std::string ClusterMetrics::PrometheusText(double now, const Cluster& cluster) {
  for (int n = 0; n < num_nodes_ && n < cluster.num_nodes(); ++n) {
    int busy = cluster.alive(n) ? cluster.BusyCores(n, now) : 0;
    busy_core_gauges_[static_cast<size_t>(n)]->Set(busy);
  }
  return registry_.TextExposition();
}

std::string ClusterMetrics::TimelineJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("num_nodes").Int(num_nodes_);
  w.Key("sample_min_interval").Double(timeline_.min_interval());
  w.Key("samples").BeginArray();
  for (const ClusterSample& s : timeline_.samples()) {
    w.BeginObject();
    w.Key("t").FixedDouble(s.time, 6);
    w.Key("pending").Int(s.pending_tasks);
    w.Key("running").Int(s.running_tasks);
    w.Key("busy_cores").Int(s.busy_cores_total);
    w.Key("alive_nodes").Int(s.alive_nodes);
    w.Key("cache_bytes").UInt(s.cache_bytes);
    w.Key("shuffle_bytes").UInt(s.shuffle_bytes);
    w.Key("busy_per_node").BeginArray();
    for (int b : s.busy_per_node) w.Int(b);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("stages").BeginArray();
  for (const StageSkewReport& r : stage_reports_) {
    w.BeginObject();
    w.Key("seq").Int(r.seq);
    w.Key("label").String(r.label);
    w.Key("start").FixedDouble(r.start_time, 6);
    w.Key("end").FixedDouble(r.end_time, 6);
    w.Key("tasks").Int(r.tasks);
    w.Key("dur_p50").FixedDouble(r.dur_p50, 6);
    w.Key("dur_p95").FixedDouble(r.dur_p95, 6);
    w.Key("dur_max").FixedDouble(r.dur_max, 6);
    w.Key("dur_skew").FixedDouble(r.dur_skew, 3);
    w.Key("straggler_partition").Int(r.straggler_partition);
    w.Key("straggler_node").Int(r.straggler_node);
    w.Key("speculative").Int(r.speculative);
    w.Key("failed").Int(r.failed);
    if (r.buckets > 0) {
      w.Key("buckets").Int(r.buckets);
      w.Key("bucket_p50").UInt(r.bucket_p50);
      w.Key("bucket_p95").UInt(r.bucket_p95);
      w.Key("bucket_max").UInt(r.bucket_max);
      w.Key("bucket_skew").FixedDouble(r.bucket_skew, 3);
      w.Key("culprit_bucket").Int(r.culprit_bucket);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("dropped_stage_reports").UInt(dropped_stage_reports_);
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : registry_.CounterSnapshot()) {
    w.Key(name).UInt(value);
  }
  w.EndObject();
  w.EndObject();
  std::string out = w.str();
  out += "\n";
  return out;
}

void ClusterMetrics::OnClockReset() {
  timeline_.Clear();
  stage_reports_.clear();
  next_stage_seq_ = 0;
  dropped_stage_reports_ = 0;
}

}  // namespace shark
