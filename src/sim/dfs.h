#ifndef SHARK_SIM_DFS_H_
#define SHARK_SIM_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace shark {

/// Type-erased immutable data block. In the simulator, "on-disk" data lives
/// in process memory; the byte counts recorded here drive the cost model.
using BlockData = std::shared_ptr<const void>;

/// Storage format of a DFS file, which determines the deserialization cost
/// charged when scanning it (§3.2; Fig 11/12 compare text vs binary inputs).
enum class DfsFormat { kText, kBinary };

/// One block of a DFS file: payload plus its serialized size and replica
/// placement (HDFS-style 3-way replication).
struct DfsBlock {
  BlockData data;
  uint64_t bytes = 0;  // serialized size on disk
  uint64_t rows = 0;
  std::vector<int> replicas;
};

/// A file in the simulated distributed filesystem.
struct DfsFile {
  std::string name;
  DfsFormat format = DfsFormat::kText;
  std::vector<DfsBlock> blocks;

  uint64_t TotalBytes() const;
  uint64_t TotalRows() const;
};

/// Simulated HDFS: named files of replicated blocks. Block placement is
/// deterministic given the seed. The namenode (this object) lives on the
/// master and is not subject to worker faults, matching the paper's setup.
class Dfs {
 public:
  Dfs(int num_nodes, int replication, uint64_t seed = 7);

  /// Creates a file; assigns `replication` replica nodes per block.
  /// Fails if the name already exists.
  Status CreateFile(const std::string& name, DfsFormat format,
                    std::vector<DfsBlock> blocks);

  /// Looks up a file.
  Result<const DfsFile*> GetFile(const std::string& name) const;

  bool Exists(const std::string& name) const;

  Status DeleteFile(const std::string& name);

  int replication() const { return replication_; }
  int num_nodes() const { return num_nodes_; }

 private:
  int num_nodes_;
  int replication_;
  Random rng_;
  std::map<std::string, DfsFile> files_;
};

}  // namespace shark

#endif  // SHARK_SIM_DFS_H_
