#include "sim/cluster.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace shark {

Cluster::Cluster(int num_nodes, int cores_per_node)
    : cores_per_node_(cores_per_node) {
  SHARK_CHECK(num_nodes > 0 && cores_per_node > 0);
  nodes_.resize(static_cast<size_t>(num_nodes));
  for (auto& n : nodes_) {
    n.core_free_at.assign(static_cast<size_t>(cores_per_node), 0.0);
  }
}

void Cluster::InjectFault(const FaultEvent& event) {
  // Sorted insert after any already-pending event with the same time, so
  // same-time faults apply in injection order (upper_bound keeps the new
  // event behind its equal-time predecessors). O(n) per insert instead of
  // the previous sort-per-insert, and stable by construction.
  auto it = std::upper_bound(pending_faults_.begin(), pending_faults_.end(),
                             event,
                             [](const FaultEvent& a, const FaultEvent& b) {
                               return a.time < b.time;
                             });
  pending_faults_.insert(it, event);
}

std::vector<int> Cluster::ApplyFaultsUpTo(double now) {
  std::vector<int> killed;
  size_t applied = 0;
  for (const FaultEvent& e : pending_faults_) {
    if (e.time > now) break;
    ++applied;
    auto& n = nodes_[static_cast<size_t>(e.node)];
    switch (e.kind) {
      case FaultEvent::Kind::kKill:
        if (n.alive) {
          n.alive = false;
          killed.push_back(e.node);
        }
        break;
      case FaultEvent::Kind::kSlowdown:
        n.slowdown = e.slowdown_factor;
        break;
      case FaultEvent::Kind::kRecover:
        n.alive = true;
        n.slowdown = 1.0;
        // A recovered node rejoins with free cores from now on.
        for (double& t : n.core_free_at) t = std::max(t, e.time);
        break;
    }
  }
  pending_faults_.erase(pending_faults_.begin(),
                        pending_faults_.begin() + static_cast<long>(applied));
  return killed;
}

bool Cluster::EarliestFreeCore(double now, double* when, int* node,
                               int* core) const {
  double best = std::numeric_limits<double>::infinity();
  int best_node = -1;
  int best_core = -1;
  for (int ni = 0; ni < num_nodes(); ++ni) {
    const NodeState& n = nodes_[static_cast<size_t>(ni)];
    if (!n.alive) continue;
    for (int ci = 0; ci < cores_per_node_; ++ci) {
      double t = std::max(now, n.core_free_at[static_cast<size_t>(ci)]);
      if (t < best) {
        best = t;
        best_node = ni;
        best_core = ci;
      }
    }
  }
  if (best_node < 0) return false;
  *when = best;
  *node = best_node;
  *core = best_core;
  return true;
}

double Cluster::EarliestFreeCoreOnNode(int node, int* core) const {
  const NodeState& n = nodes_[static_cast<size_t>(node)];
  SHARK_CHECK(n.alive);
  double best = std::numeric_limits<double>::infinity();
  int best_core = 0;
  for (int ci = 0; ci < cores_per_node_; ++ci) {
    double t = n.core_free_at[static_cast<size_t>(ci)];
    if (t < best) {
      best = t;
      best_core = ci;
    }
  }
  *core = best_core;
  return best;
}

void Cluster::OccupyCore(int node, int core, double until) {
  auto& n = nodes_[static_cast<size_t>(node)];
  n.core_free_at[static_cast<size_t>(core)] = until;
}

void Cluster::Reset() {
  pending_faults_.clear();
  for (auto& n : nodes_) {
    n.alive = true;
    n.slowdown = 1.0;
    std::fill(n.core_free_at.begin(), n.core_free_at.end(), 0.0);
  }
}

int Cluster::BusyCores(int node, double now) const {
  const NodeState& n = nodes_[static_cast<size_t>(node)];
  int busy = 0;
  for (double t : n.core_free_at) busy += t > now ? 1 : 0;
  return busy;
}

int Cluster::AliveNodes() const {
  int count = 0;
  for (const auto& n : nodes_) count += n.alive ? 1 : 0;
  return count;
}

}  // namespace shark
