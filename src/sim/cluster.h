#ifndef SHARK_SIM_CLUSTER_H_
#define SHARK_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/cost_model.h"

namespace shark {

/// State of one simulated worker node.
struct NodeState {
  bool alive = true;
  /// Multiplier on task durations; >1 models a straggler node.
  double slowdown = 1.0;
  /// Virtual time at which each core becomes free.
  std::vector<double> core_free_at;
};

/// A scheduled node failure (the Fig 9 experiment) or slowdown injection.
struct FaultEvent {
  enum class Kind { kKill, kSlowdown, kRecover };
  Kind kind = Kind::kKill;
  double time = 0.0;
  int node = 0;
  double slowdown_factor = 1.0;  // for kSlowdown
};

/// Virtual-time model of the cluster: N nodes x C cores, with fault
/// injection. The DAG scheduler drives this; the cluster only tracks node and
/// core availability in virtual time. All times are seconds of virtual time
/// since the context was created.
class Cluster {
 public:
  Cluster(int num_nodes, int cores_per_node);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int cores_per_node() const { return cores_per_node_; }
  int total_cores() const { return num_nodes() * cores_per_node_; }

  const NodeState& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  bool alive(int id) const { return nodes_[static_cast<size_t>(id)].alive; }
  double slowdown(int id) const { return nodes_[static_cast<size_t>(id)].slowdown; }

  /// Schedules a fault to be applied when virtual time reaches `event.time`.
  void InjectFault(const FaultEvent& event);

  /// Applies all faults with time <= now; returns ids of nodes newly killed.
  std::vector<int> ApplyFaultsUpTo(double now);

  /// Earliest time >= now at which some core on an alive node is free.
  /// Returns false if no node is alive.
  bool EarliestFreeCore(double now, double* when, int* node, int* core) const;

  /// Earliest free core on a specific node (must be alive).
  double EarliestFreeCoreOnNode(int node, int* core) const;

  /// Marks a core busy until `until`.
  void OccupyCore(int node, int core, double until);

  /// Resets all core availability to time 0 and revives all nodes. Used
  /// between independent experiments sharing a context.
  void Reset();

  /// Number of alive nodes.
  int AliveNodes() const;

  /// Cores on `node` still occupied at virtual time `now` (core_free_at in
  /// the strict future). Alive-ness is the caller's concern.
  int BusyCores(int node, double now) const;

 private:
  int cores_per_node_;
  std::vector<NodeState> nodes_;
  std::vector<FaultEvent> pending_faults_;  // sorted by time
};

}  // namespace shark

#endif  // SHARK_SIM_CLUSTER_H_
