#ifndef SHARK_SIM_COST_MODEL_H_
#define SHARK_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace shark {

/// Per-node hardware parameters, modeled after the paper's m2.4xlarge EC2
/// nodes (8 virtual cores, 68 GB RAM, 1.6 TB local disk, GigE network).
/// All throughputs are per core or per node as noted; the defaults reproduce
/// the paper's measured constants (e.g. 200 MB/s/core text deserialization,
/// DRAM >10x faster than the network, §2.2/§3.2).
struct HardwareModel {
  int cores_per_node = 8;
  uint64_t mem_bytes_per_node = 68ULL * 1024 * 1024 * 1024;

  // Sequential disk bandwidth and seek penalty, per node.
  double disk_bw_bytes_per_sec = 100.0e6;
  double disk_seek_sec = 0.008;

  // Per-node network bandwidth (1 Gbps full duplex ~ 120 MB/s).
  double net_bw_bytes_per_sec = 120.0e6;

  // In-memory columnar scan rate per core (DRAM-speed, §3.2).
  double mem_scan_bytes_per_sec = 2.0e9;

  // Deserialization rates per core (§3.2: "modern commodity CPUs can
  // deserialize at a rate of only 200MB per second per core").
  double text_deser_bytes_per_sec = 200.0e6;
  double binary_deser_bytes_per_sec = 600.0e6;

  // Serialization rate per core (writing text/binary output).
  double ser_bytes_per_sec = 400.0e6;

  // Interpreted expression evaluation / operator overhead per row visited
  // (§5: interpreting Hive expression evaluators dominates CPU for in-memory
  // data).
  double row_cpu_sec = 100e-9;

  // Hash table insert/probe cost per record (aggregation, hash join).
  double hash_record_sec = 80e-9;

  // Comparison-sort cost: sort_record_sec * n * log2(n).
  double sort_record_sec = 25e-9;

  // Floating-point op cost for ML kernels (fused multiply-add pipeline).
  double flop_sec = 1.2e-9;
};

/// Engine-behaviour knobs. The Shark-vs-Hive comparison in the paper reduces
/// to exactly these differences (§5, §7); both engines run on the same
/// simulator and operators, differing only in this profile. Each knob is
/// independently toggleable, which the ablation bench exploits.
struct EngineProfile {
  std::string name = "shark";

  // Fixed per-task launch overhead. Spark: ~5 ms (event-driven RPC, reused
  // worker processes). Hadoop: seconds (per-task OS process + submission
  // latency).
  double task_launch_overhead_sec = 0.005;

  // Heartbeat-driven task assignment: tasks only start on multiples of this
  // interval (Hadoop uses 3 s heartbeats; 0 disables quantization).
  double heartbeat_interval_sec = 0.0;

  // Map outputs: in-memory materialization (Shark, §5 "Memory-based
  // Shuffle") vs write-to-disk + read-back (Hadoop).
  bool shuffle_through_disk = false;

  // Hadoop sorts map output by key before the shuffle; Shark uses
  // hash-based aggregation and skips the sort (§7 "Execution Strategies").
  bool sort_before_shuffle = false;

  // Multi-stage queries materialize each intermediate stage to the
  // replicated DFS (Hive compiles to MapReduce job chains); general-DAG
  // engines pipeline stages without touching the DFS.
  bool materialize_stages_to_dfs = false;

  // In-memory columnar table cache available (Shark memstore).
  bool memory_store = true;

  // Partial DAG execution: run-time statistics & replanning.
  bool pde_enabled = true;

  // Multiplier on per-record CPU terms (row processing, hashing, sorting).
  // Hive/Hadoop pay heavy object churn: reflective SerDes, ObjectInspectors
  // and per-record temporary objects pressure the GC (§5 "Temporary Object
  // Creation", §7); Shark's operators avoid it.
  double cpu_overhead_multiplier = 1.0;

  // MapReduce sorts the *entire map input* by key before the combiner runs;
  // hash-based engines skip this (§7 "Execution Strategies").
  bool sort_full_map_input = false;

  // DFS replication factor for materialized outputs.
  int dfs_replication = 3;

  /// Spark/Shark profile (the paper's system).
  static EngineProfile Shark();
  /// Hadoop/Hive profile (the paper's baseline).
  static EngineProfile Hadoop();
};

/// Work counters accumulated by a task while it executes real data
/// operations. The cost model converts these to virtual seconds. Counters are
/// in *real* units; the context-wide `virtual_data_scale` multiplier maps the
/// scaled-down bench datasets back to paper-sized datasets (the row/byte
/// counts scale; per-node hardware constants and task overheads do not).
struct TaskWork {
  uint64_t disk_read_bytes = 0;    // local disk (HDFS block or spilled data)
  uint64_t disk_seeks = 0;         // random-access penalties
  uint64_t net_read_bytes = 0;     // remote fetch over the network
  uint64_t mem_read_bytes = 0;     // in-memory columnar scan
  uint64_t text_deser_bytes = 0;   // schema-on-read text parsing
  uint64_t binary_deser_bytes = 0; // binary SerDe
  uint64_t ser_bytes = 0;          // output serialization
  uint64_t rows_processed = 0;     // per-row operator work
  uint64_t hash_records = 0;       // hash-table inserts/probes
  uint64_t sort_records = 0;       // records comparison-sorted
  uint64_t disk_write_bytes = 0;   // local disk writes (map output spill)
  uint64_t dfs_write_bytes = 0;    // replicated DFS writes (pre-replication)
  uint64_t flops = 0;              // floating-point ops (ML kernels)
  double cpu_seconds = 0.0;        // explicit CPU charge

  void Add(const TaskWork& other);

  /// Total bytes moved through any channel (reads plus writes) — the
  /// one-number I/O-intensity signal query profiles report per stage.
  uint64_t TotalBytesMoved() const {
    return disk_read_bytes + net_read_bytes + mem_read_bytes +
           disk_write_bytes + dfs_write_bytes;
  }
};

/// Converts task work counters into virtual task duration under a hardware
/// model and an engine profile.
class CostModel {
 public:
  explicit CostModel(HardwareModel hw) : hw_(hw) {}

  const HardwareModel& hardware() const { return hw_; }

  /// Core-occupancy seconds for the data-processing portion of a task (does
  /// not include launch overhead or heartbeat waits, which the scheduler
  /// applies). `scale` is the virtual data scale multiplier.
  double WorkSeconds(const TaskWork& work, const EngineProfile& profile,
                     double scale) const;

  /// Time to transfer `bytes` over one node's network link.
  double NetSeconds(uint64_t bytes, double scale) const;

 private:
  HardwareModel hw_;
};

}  // namespace shark

#endif  // SHARK_SIM_COST_MODEL_H_
