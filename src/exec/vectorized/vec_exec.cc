#include "exec/vectorized/vec_exec.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/cardinality.h"
#include "common/logging.h"
#include "exec/vectorized/column_batch.h"
#include "exec/vectorized/kernels.h"
#include "rdd/pair_rdd.h"
#include "sql/aggregates.h"

namespace shark {
namespace vec {

namespace {

/// One partition scanned and filtered: the surviving rows as a compacted
/// batch, plus the pre-filter row count (the filter charge's base).
struct ScannedPart {
  ColumnBatch batch;
  size_t scanned = 0;
};

/// Charges the columnar read (same bytes/rows as the scalar memScan),
/// decodes the needed columns, and applies the predicate in kBatchSize
/// windows. The per-row filter charge is NOT made here — the caller charges
/// it once per task over the whole partition block, like ApplyPredicate.
ScannedPart ScanFilterPart(const VecScan& s, const TablePartition& part,
                           TaskContext* tctx) {
  uint64_t bytes = 0;
  for (int c : *s.needed) bytes += part.ColumnBytes(c);
  tctx->work().mem_read_bytes += bytes;
  tctx->work().rows_processed += part.num_rows();
  ScannedPart out;
  out.scanned = part.num_rows();
  Status st =
      DecodePartition(part, s.schema->fields(), *s.needed, s.table, &out.batch);
  SHARK_CHECK(st.ok()) << " " << st.message();
  if (s.predicate == nullptr) return out;
  SelVector sel;
  ColumnVector verdict;
  for (size_t b = 0; b < out.batch.num_rows; b += kBatchSize) {
    size_t e = std::min(out.batch.num_rows, b + kBatchSize);
    s.predicate->EvalBatch(out.batch, b, e, &verdict);
    SelectTrue(verdict, b, e, &sel);
  }
  out.batch = GatherBatch(out.batch, sel);
  return out;
}

}  // namespace

RddPtr<Row> BuildVecScanFilter(const VecScan& scan) {
  return scan.base->MapPartitions(
      [scan](int, const std::vector<TablePartitionPtr>& parts,
             TaskContext* tctx) {
        std::vector<Row> out;
        uint64_t scanned = 0;
        for (const TablePartitionPtr& part : parts) {
          if (part == nullptr) continue;
          ScannedPart sp = ScanFilterPart(scan, *part, tctx);
          scanned += sp.scanned;
          for (size_t i = 0; i < sp.batch.num_rows; ++i) {
            out.push_back(MaterializeRow(sp.batch, i));
          }
        }
        if (scan.predicate != nullptr) {
          tctx->work().rows_processed +=
              ExprChargeRows(scanned, scan.predicate_extra, scan.compiled_charges);
        }
        return out;
      },
      "vecScanFilter:" + scan.table);
}

RddPtr<Row> BuildVecScanProject(
    const VecScan& scan,
    std::shared_ptr<const std::vector<CompiledExpr>> projects,
    uint64_t project_extra) {
  return scan.base->MapPartitions(
      [scan, projects, project_extra](int,
                                      const std::vector<TablePartitionPtr>& parts,
                                      TaskContext* tctx) {
        std::vector<Row> out;
        uint64_t scanned = 0;
        uint64_t survived = 0;
        std::vector<ColumnVector> cols(projects->size());
        for (const TablePartitionPtr& part : parts) {
          if (part == nullptr) continue;
          ScannedPart sp = ScanFilterPart(scan, *part, tctx);
          scanned += sp.scanned;
          const size_t m = sp.batch.num_rows;
          survived += m;
          for (size_t b = 0; b < m; b += kBatchSize) {
            const size_t e = std::min(m, b + kBatchSize);
            for (size_t j = 0; j < projects->size(); ++j) {
              (*projects)[j].EvalBatch(sp.batch, b, e, &cols[j]);
            }
            for (size_t i = b; i < e; ++i) {
              Row r;
              r.fields.reserve(cols.size());
              for (const ColumnVector& c : cols) {
                r.fields.push_back(c.ValueAt(i - b));
              }
              out.push_back(std::move(r));
            }
          }
        }
        if (scan.predicate != nullptr) {
          tctx->work().rows_processed +=
              ExprChargeRows(scanned, scan.predicate_extra, scan.compiled_charges);
        }
        tctx->work().rows_processed +=
            ExprChargeRows(survived, project_extra, scan.compiled_charges);
        return out;
      },
      "vecScanProject:" + scan.table);
}

namespace {

/// Map-side shuffle dependency of the vectorized group-by. The reduce side
/// (ShuffledReduceRdd<Row, AggState>) is reused unchanged, so the bucket
/// payloads, byte/record statistics and every virtual-time charge must match
/// CombiningShuffleDep<Row, Row, AggState>'s sequence exactly; comments
/// below mark each replicated charge.
class VecAggShuffleDep final : public ShuffleDependency {
 public:
  VecAggShuffleDep(
      RddPtr<TablePartitionPtr> parent, int num_buckets, VecScan scan,
      std::shared_ptr<const std::vector<CompiledExpr>> groups,
      std::shared_ptr<const std::vector<std::vector<CompiledExpr>>> agg_args,
      std::shared_ptr<const std::vector<AggCall>> calls)
      : ShuffleDependency(parent, num_buckets),
        scan_(std::move(scan)),
        groups_(std::move(groups)),
        agg_args_(std::move(agg_args)),
        calls_(std::move(calls)) {}

  MapOutput PartitionBlock(const BlockData& block,
                           TaskContext* tctx) const override {
    const auto& parts =
        *std::static_pointer_cast<const std::vector<TablePartitionPtr>>(block);
    VecGroupTable table;
    std::vector<AggState> states;
    std::vector<uint64_t> row_hashes;  // surviving rows, input order
    uint64_t scanned = 0;
    uint64_t fed = 0;  // rows reaching the group-by (the scalar `in.size()`)
    std::vector<ColumnVector> keycols(groups_->size());
    std::vector<const ColumnVector*> keyviews(groups_->size());
    std::vector<std::vector<ColumnVector>> argcols(calls_->size());
    for (const TablePartitionPtr& part : parts) {
      if (part == nullptr) continue;
      ScannedPart sp = ScanFilterPart(scan_, *part, tctx);
      scanned += sp.scanned;
      const size_t m = sp.batch.num_rows;
      fed += m;
      for (size_t b = 0; b < m; b += kBatchSize) {
        const size_t e = std::min(m, b + kBatchSize);
        const size_t w = e - b;
        for (size_t k = 0; k < groups_->size(); ++k) {
          (*groups_)[k].EvalBatch(sp.batch, b, e, &keycols[k]);
          keyviews[k] = &keycols[k];
        }
        const size_t hbase = row_hashes.size();
        HashKeyColumns(keyviews, w, &row_hashes);
        for (size_t ci = 0; ci < calls_->size(); ++ci) {
          const std::vector<CompiledExpr>& progs = (*agg_args_)[ci];
          argcols[ci].resize(progs.size());
          for (size_t ai = 0; ai < progs.size(); ++ai) {
            progs[ai].EvalBatch(sp.batch, b, e, &argcols[ci][ai]);
          }
        }
        for (size_t i = 0; i < w; ++i) {
          size_t g = table.FindOrInsert(keyviews, i, row_hashes[hbase + i]);
          if (g == states.size()) states.push_back(InitAggState(*calls_));
          AggState& state = states[g];
          for (size_t ci = 0; ci < calls_->size(); ++ci) {
            const AggCall& call = (*calls_)[ci];
            AggCell& cell = state.cells[ci];
            if (call.fn == AggCall::Fn::kCountStar) {
              cell.count += 1;
              continue;
            }
            if (call.fn == AggCall::Fn::kCountDistinct) {
              Row tuple;
              bool any_null = false;
              for (const ColumnVector& ac : argcols[ci]) {
                Value v = ac.ValueAt(i);
                any_null = any_null || v.is_null();
                tuple.fields.push_back(std::move(v));
              }
              if (!any_null) cell.distinct.insert(std::move(tuple));
              continue;
            }
            Value v = argcols[ci].empty() ? Value::Null()
                                          : argcols[ci][0].ValueAt(i);
            AccumulateValue(call, v, &cell);
          }
        }
      }
    }
    // Charges of the replaced scalar stages, once per task like the
    // originals: scanFilter (ApplyPredicate), aggKey (MapRdd)...
    if (scan_.predicate != nullptr) {
      tctx->work().rows_processed +=
          ExprChargeRows(scanned, scan_.predicate_extra, scan_.compiled_charges);
    }
    tctx->work().rows_processed += fed;
    // ...and CombiningShuffleDep::PartitionBlock's combine charges.
    tctx->work().rows_processed += fed;
    tctx->work().hash_records += fed;
    SampleCardinality sample;
    sample.n = static_cast<double>(fed);
    sample.d = static_cast<double>(table.size());
    {
      std::unordered_set<uint64_t> first_half;
      std::unordered_set<uint64_t> second_half;
      size_t half = row_hashes.size() / 2;
      for (size_t i = 0; i < row_hashes.size(); ++i) {
        (i < half ? first_half : second_half).insert(row_hashes[i]);
      }
      sample.d_first = static_cast<double>(first_half.size());
      sample.d_second = static_cast<double>(second_half.size());
      for (uint64_t k : first_half) {
        if (second_half.count(k) > 0) sample.overlap += 1.0;
      }
    }
    double growth = DistinctGrowthFactorSplit(sample, tctx->virtual_scale());
    double byte_adjust = growth / std::max(tctx->virtual_scale(), 1.0);

    // Re-home the groups in the exact container the scalar combiner uses:
    // same hasher and same first-seen insertion sequence give the same
    // iteration order, so bucket payloads match the scalar path pair for
    // pair — CollectKeyStats feeds order-sensitive heavy-hitter counters,
    // and any order drift would nudge PDE's skew decisions.
    std::unordered_map<Row, AggState, KeyHasher<Row>> combined;
    for (size_t g = 0; g < table.size(); ++g) {
      combined.emplace(table.group_keys()[g], std::move(states[g]));
    }
    std::vector<std::vector<std::pair<Row, AggState>>> buckets(
        static_cast<size_t>(num_buckets_));
    uint64_t distinct = combined.size();
    for (auto& [k, c] : combined) {
      auto b = static_cast<size_t>(KeyHash(k) %
                                   static_cast<uint64_t>(num_buckets_));
      buckets[b].emplace_back(k, std::move(c));
    }
    MapOutput out;
    out.on_disk = tctx->profile().shuffle_through_disk;
    out.buckets.reserve(buckets.size());
    uint64_t out_bytes = 0;
    uint64_t out_records = 0;
    uint64_t raw_bytes = 0;
    for (auto& bucket : buckets) {
      raw_bytes += ApproxSizeOfRange(bucket);
      uint64_t adjusted = static_cast<uint64_t>(
          static_cast<double>(ApproxSizeOfRange(bucket)) * byte_adjust);
      out_records += bucket.size();
      out_bytes += adjusted;
      out.bucket_bytes.push_back(adjusted);
      out.bucket_records.push_back(bucket.size());
      out.bucket_cost_scale.push_back(byte_adjust);
      out.buckets.push_back(
          std::make_shared<const std::vector<std::pair<Row, AggState>>>(
              std::move(bucket)));
    }
    tctx->ReserveOrSpillHash(raw_bytes, distinct);
    tctx->ReleaseAllWorkingSet();
    internal_shuffle::ChargeMapOutputWrite(out_bytes, out_records, fed, tctx);
    return out;
  }

  void CollectKeyStats(const BlockData& bucket, HeavyHitters* hh,
                       ApproxHistogram* hist) const override {
    const auto& in = *std::static_pointer_cast<
        const std::vector<std::pair<Row, AggState>>>(bucket);
    for (const auto& [k, c] : in) {
      internal_shuffle::AddKeyToStats(k, hh, hist);
    }
  }

 private:
  VecScan scan_;
  std::shared_ptr<const std::vector<CompiledExpr>> groups_;
  std::shared_ptr<const std::vector<std::vector<CompiledExpr>>> agg_args_;
  std::shared_ptr<const std::vector<AggCall>> calls_;
};

}  // namespace

std::shared_ptr<ShuffleDependency> MakeVecAggDep(
    const VecScan& scan, int num_buckets,
    std::shared_ptr<const std::vector<CompiledExpr>> group_programs,
    std::shared_ptr<const std::vector<std::vector<CompiledExpr>>> agg_arg_programs,
    std::shared_ptr<const std::vector<AggCall>> calls) {
  // Identity pass-through so the shuffle-map stage carries a recognizable
  // label (the base may be the raw cached RDD or a prunedScan subset).
  // MapPartitionsRdd charges nothing itself; the cached base's read charges
  // flow through GetOrCompute exactly as in the scalar chain.
  auto parent = scan.base->MapPartitions(
      [](int, const std::vector<TablePartitionPtr>& parts, TaskContext*) {
        return parts;
      },
      "vecAggKey:" + scan.table);
  return std::make_shared<VecAggShuffleDep>(
      parent, num_buckets, scan, std::move(group_programs),
      std::move(agg_arg_programs), std::move(calls));
}

}  // namespace vec
}  // namespace shark
