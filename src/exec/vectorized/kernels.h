#ifndef SHARK_EXEC_VECTORIZED_KERNELS_H_
#define SHARK_EXEC_VECTORIZED_KERNELS_H_

#include <cstdint>
#include <vector>

#include "exec/vectorized/column_batch.h"
#include "relation/row.h"
#include "relation/value.h"

namespace shark {
namespace vec {

/// Hash of cell i of `col`, replicating Value::Hash bit for bit (NULL
/// sentinel, NaN sentinel, exact-int64 doubles hashing as their integer,
/// FNV over string bytes) without constructing a Value on the typed paths.
uint64_t HashCell(const ColumnVector& col, size_t i);

/// Column-wise group-key hashing: out[i] = KeyHash(Row{keys[*][i]}), i.e. the
/// seed-and-HashCombine fold the shuffle layer applies to key Rows. Appends n
/// hashes to `out`.
void HashKeyColumns(const std::vector<const ColumnVector*>& keys, size_t n,
                    std::vector<uint64_t>* out);

/// Open-addressing hash table mapping group-key tuples to dense group
/// indices. Groups keep their first-seen (insertion) order, which makes
/// iteration deterministic and lets callers accumulate aggregates in input
/// row order — required for bit-identical double summation vs. the row path.
class VecGroupTable {
 public:
  VecGroupTable();

  /// Returns the dense index of the group for row `row` of the key columns,
  /// inserting (and materializing the key Row) on first sight. `hash` must be
  /// the HashKeyColumns value for that row.
  size_t FindOrInsert(const std::vector<const ColumnVector*>& keys, size_t row,
                      uint64_t hash);

  size_t size() const { return keys_.size(); }
  const std::vector<Row>& group_keys() const { return keys_; }
  const std::vector<uint64_t>& group_hashes() const { return hashes_; }

 private:
  void Rehash(size_t new_capacity);

  std::vector<uint32_t> slots_;  // group index + 1; 0 = empty
  std::vector<Row> keys_;        // insertion order
  std::vector<uint64_t> hashes_;
};

}  // namespace vec
}  // namespace shark

#endif  // SHARK_EXEC_VECTORIZED_KERNELS_H_
