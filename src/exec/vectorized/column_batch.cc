#include "exec/vectorized/column_batch.h"

#include <utility>

#include "common/logging.h"

namespace shark {
namespace vec {

Value ColumnVector::ValueAt(size_t i) const {
  switch (storage) {
    case Storage::kAllNull:
      return Value::Null();
    case Storage::kGeneric:
      return values[i];
    case Storage::kInt64:
      if (!nulls.empty() && nulls[i] != 0) return Value::Null();
      switch (type) {
        case TypeKind::kBool:
          return Value::Bool(ints[i] != 0);
        case TypeKind::kDate:
          return Value::Date(ints[i]);
        default:
          return Value::Int64(ints[i]);
      }
    case Storage::kDouble:
      if (!nulls.empty() && nulls[i] != 0) return Value::Null();
      return Value::Double(doubles[i]);
    case Storage::kString:
      if (!nulls.empty() && nulls[i] != 0) return Value::Null();
      return Value::String(std::string(strs[i]));
  }
  return Value::Null();
}

Status DecodePartition(const TablePartition& part,
                       const std::vector<Field>& fields,
                       const std::vector<int>& wanted, const std::string& table,
                       ColumnBatch* out) {
  out->num_rows = part.num_rows();
  out->cols.clear();
  out->cols.resize(fields.size());
  for (size_t c = 0; c < fields.size(); ++c) {
    ColumnVector& cv = out->cols[c];
    cv.n = out->num_rows;
    cv.type = fields[c].type;
    cv.storage = ColumnVector::Storage::kAllNull;
  }
  for (int c : wanted) {
    if (c < 0 || c >= part.num_columns() ||
        static_cast<size_t>(c) >= fields.size()) {
      return Status::Internal("column index " + std::to_string(c) +
                              " out of range for table '" + table + "'");
    }
    const ColumnChunk& chunk = part.column(c);
    const Field& field = fields[static_cast<size_t>(c)];
    if (chunk.type() != field.type) {
      return Status::Internal(
          "columnar/analyzer type mismatch on '" + table + "." + field.name +
          "': stored chunk is " + std::string(TypeName(chunk.type())) +
          " but the analyzer bound slot type " +
          std::string(TypeName(field.type)));
    }
    ColumnVector& cv = out->cols[static_cast<size_t>(c)];
    switch (field.type) {
      case TypeKind::kInt64:
      case TypeKind::kDate:
      case TypeKind::kBool:
        cv.ints.reserve(out->num_rows);
        if (chunk.DecodeInt64s(&cv.ints)) {
          cv.storage = ColumnVector::Storage::kInt64;
          continue;
        }
        cv.ints.clear();
        break;
      case TypeKind::kDouble:
        cv.doubles.reserve(out->num_rows);
        if (chunk.DecodeDoubles(&cv.doubles)) {
          cv.storage = ColumnVector::Storage::kDouble;
          continue;
        }
        cv.doubles.clear();
        break;
      case TypeKind::kString:
        cv.strs.reserve(out->num_rows);
        if (chunk.DecodeStringViews(&cv.strs)) {
          cv.storage = ColumnVector::Storage::kString;
          continue;
        }
        cv.strs.clear();
        break;
      default:
        break;
    }
    // Nullable or unusual chunk: fall back to exact Values.
    cv.values.reserve(out->num_rows);
    chunk.Decode(&cv.values);
    cv.storage = ColumnVector::Storage::kGeneric;
  }
  return Status::OK();
}

void SelectTrue(const ColumnVector& bools, size_t begin, size_t end,
                SelVector* sel) {
  switch (bools.storage) {
    case ColumnVector::Storage::kAllNull:
      return;
    case ColumnVector::Storage::kInt64:
      if (bools.nulls.empty()) {
        for (size_t i = begin; i < end; ++i) {
          if (bools.ints[i - begin] != 0) sel->push_back(static_cast<int32_t>(i));
        }
      } else {
        for (size_t i = begin; i < end; ++i) {
          size_t k = i - begin;
          if (bools.nulls[k] == 0 && bools.ints[k] != 0) {
            sel->push_back(static_cast<int32_t>(i));
          }
        }
      }
      return;
    default:
      // Predicate results are booleans; anything else came through the
      // generic fallback. NULL counts as false, exactly like EvalBool.
      for (size_t i = begin; i < end; ++i) {
        Value v = bools.ValueAt(i - begin);
        if (!v.is_null() && v.bool_v()) sel->push_back(static_cast<int32_t>(i));
      }
      return;
  }
}

ColumnBatch GatherBatch(const ColumnBatch& in, const SelVector& sel) {
  ColumnBatch out;
  out.num_rows = sel.size();
  out.cols.resize(in.cols.size());
  for (size_t c = 0; c < in.cols.size(); ++c) {
    const ColumnVector& src = in.cols[c];
    ColumnVector& dst = out.cols[c];
    dst.type = src.type;
    dst.storage = src.storage;
    dst.n = sel.size();
    if (!src.nulls.empty()) {
      dst.nulls.reserve(sel.size());
      for (int32_t i : sel) dst.nulls.push_back(src.nulls[static_cast<size_t>(i)]);
    }
    switch (src.storage) {
      case ColumnVector::Storage::kInt64:
        dst.ints.reserve(sel.size());
        for (int32_t i : sel) dst.ints.push_back(src.ints[static_cast<size_t>(i)]);
        break;
      case ColumnVector::Storage::kDouble:
        dst.doubles.reserve(sel.size());
        for (int32_t i : sel) {
          dst.doubles.push_back(src.doubles[static_cast<size_t>(i)]);
        }
        break;
      case ColumnVector::Storage::kString:
        dst.strs.reserve(sel.size());
        for (int32_t i : sel) dst.strs.push_back(src.strs[static_cast<size_t>(i)]);
        break;
      case ColumnVector::Storage::kGeneric:
        dst.values.reserve(sel.size());
        for (int32_t i : sel) {
          dst.values.push_back(src.values[static_cast<size_t>(i)]);
        }
        break;
      case ColumnVector::Storage::kAllNull:
        break;
    }
  }
  return out;
}

Row MaterializeRow(const ColumnBatch& batch, size_t i) {
  Row row;
  row.fields.reserve(batch.cols.size());
  for (const ColumnVector& cv : batch.cols) row.fields.push_back(cv.ValueAt(i));
  return row;
}

}  // namespace vec
}  // namespace shark
