#ifndef SHARK_EXEC_VECTORIZED_COLUMN_BATCH_H_
#define SHARK_EXEC_VECTORIZED_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/table_partition.h"
#include "common/status.h"
#include "relation/row.h"
#include "relation/types.h"
#include "relation/value.h"

namespace shark {
namespace vec {

/// Rows evaluated per EvalBatch window. Large enough to amortize dispatch,
/// small enough that a window of operand vectors stays cache-resident.
inline constexpr size_t kBatchSize = 1024;

/// One column of a batch: a typed dense array plus an optional null bitmap.
/// String cells are string_views into storage owned by the source ColumnChunk
/// (or by this vector's `values` for generic results), so a ColumnVector must
/// not outlive the TablePartition it was decoded from.
struct ColumnVector {
  enum class Storage : uint8_t {
    kInt64,    // ints: BIGINT / DATE / BOOLEAN (0 or 1) payloads
    kDouble,   // doubles
    kString,   // strs (borrowed views)
    kGeneric,  // values: exact per-row Values (mixed/unknown results)
    kAllNull,  // every cell NULL; no payload array
  };

  TypeKind type = TypeKind::kNull;  // logical type of non-null cells
  Storage storage = Storage::kAllNull;
  size_t n = 0;
  /// 1 = NULL. Empty means "no nulls" for typed storages; ignored for
  /// kGeneric (cells carry their own kind) and kAllNull.
  std::vector<uint8_t> nulls;

  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string_view> strs;
  std::vector<Value> values;

  bool IsNull(size_t i) const {
    switch (storage) {
      case Storage::kAllNull:
        return true;
      case Storage::kGeneric:
        return values[i].is_null();
      default:
        return !nulls.empty() && nulls[i] != 0;
    }
  }

  /// Reconstructs the exact Value the row path would see for cell i.
  Value ValueAt(size_t i) const;
};

/// A batch of rows in columnar form. `cols` is indexed by expression slot
/// (== table column index); columns the plan does not need are present as
/// kAllNull vectors, mirroring TablePartition::ToRows' pruning contract
/// (full arity, NULL for undecoded columns).
struct ColumnBatch {
  size_t num_rows = 0;
  std::vector<ColumnVector> cols;
};

/// Indices of surviving rows, ascending. The output of predicate kernels.
using SelVector = std::vector<int32_t>;

/// Decodes the `wanted` columns of `part` into typed vectors (others become
/// kAllNull). Verifies each decoded chunk's logical type against the
/// analyzer's slot type in `fields` and fails with a clear error on mismatch
/// instead of letting a kernel misread the payload. `table` is used only for
/// error messages.
Status DecodePartition(const TablePartition& part,
                       const std::vector<Field>& fields,
                       const std::vector<int>& wanted, const std::string& table,
                       ColumnBatch* out);

/// Appends the indices in [begin, end) whose cell in `bools` is non-NULL and
/// true (the predicate contract: NULL counts as false). Indices are absolute
/// when `bools` holds one cell per batch row evaluated from offset `begin`.
void SelectTrue(const ColumnVector& bools, size_t begin, size_t end,
                SelVector* sel);

/// Gathers the selected rows of `in` into a compacted batch (row i of the
/// result is row sel[i] of `in`).
ColumnBatch GatherBatch(const ColumnBatch& in, const SelVector& sel);

/// Materializes row i of the batch with full arity, matching
/// TablePartition::ToRows cell for cell.
Row MaterializeRow(const ColumnBatch& batch, size_t i);

}  // namespace vec
}  // namespace shark

#endif  // SHARK_EXEC_VECTORIZED_COLUMN_BATCH_H_
