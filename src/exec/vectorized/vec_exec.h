#ifndef SHARK_EXEC_VECTORIZED_VEC_EXEC_H_
#define SHARK_EXEC_VECTORIZED_VEC_EXEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table_partition.h"
#include "rdd/rdd.h"
#include "relation/row.h"
#include "relation/types.h"
#include "sql/expr_compiler.h"
#include "sql/logical_plan.h"

namespace shark {
namespace vec {

/// A prepared vectorized scan of a cached columnar table: the (possibly
/// pruned) partition RDD plus everything the fused operators need. Built by
/// the executor; the charge-model fields exist so the fused pipelines issue
/// exactly the virtual-time charges the scalar memScan -> scanFilter chain
/// would (only host wall-clock may differ).
struct VecScan {
  RddPtr<TablePartitionPtr> base;
  std::shared_ptr<const Schema> schema;
  std::shared_ptr<const std::vector<int>> needed;
  std::string table;

  /// Compiled scan predicate; null for unfiltered scans.
  std::shared_ptr<const CompiledExpr> predicate;
  uint64_t predicate_extra = 0;  // UdfExtraRows of the predicate

  /// Mirrors ExecOptions::compile_expressions: which per-row charge formula
  /// the scalar path would have used (the vectorized engine always runs the
  /// compiled program, but it must not change virtual costs).
  bool compiled_charges = false;
};

/// Per-row virtual charge of evaluating expressions over n rows, matching
/// ApplyPredicate/BuildProject's interpreted and compiled formulas.
inline uint64_t ExprChargeRows(uint64_t n, uint64_t extra, bool compiled) {
  return compiled ? n * (4 + 5 * extra) / 5 : n * (1 + extra);
}

/// Fused scan+filter over the columnar store: decodes only the needed
/// columns, evaluates the predicate batch-at-a-time, and materializes
/// full-arity survivor Rows. Replaces the memScan -> scanFilter chain with
/// identical output rows (and order) and identical charges.
RddPtr<Row> BuildVecScanFilter(const VecScan& scan);

/// Fused scan+filter+project: survivors are compacted with a selection
/// vector and each projection runs batch-at-a-time over the compacted
/// columns; Rows are only materialized for the projected outputs.
RddPtr<Row> BuildVecScanProject(
    const VecScan& scan,
    std::shared_ptr<const std::vector<CompiledExpr>> projects,
    uint64_t project_extra);

/// Map side of a vectorized hash group-by directly over the columnar store:
/// scan, filter, column-wise key hashing and batched group-table probing in
/// one ShuffleDependency. Emits buckets of (key Row, AggState) pairs that
/// the existing ShuffledReduceRdd<Row, AggState> consumes unchanged, with
/// accumulation in input row order so AggStates (and therefore all shuffle
/// byte/record statistics) are bit-identical to the scalar
/// aggKey -> CombiningShuffleDep chain.
std::shared_ptr<ShuffleDependency> MakeVecAggDep(
    const VecScan& scan, int num_buckets,
    std::shared_ptr<const std::vector<CompiledExpr>> group_programs,
    std::shared_ptr<const std::vector<std::vector<CompiledExpr>>> agg_arg_programs,
    std::shared_ptr<const std::vector<AggCall>> calls);

}  // namespace vec
}  // namespace shark

#endif  // SHARK_EXEC_VECTORIZED_VEC_EXEC_H_
