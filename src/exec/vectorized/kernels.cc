#include "exec/vectorized/kernels.h"

#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace shark {
namespace vec {

namespace {

// Sentinels from Value::Hash — NULL and NaN hash to fixed values so equal
// keys (NULL==NULL, NaN==NaN under grouping semantics) land in one group.
constexpr uint64_t kNullHash = 0x9ae16a3b2f90404fULL;
constexpr uint64_t kNanHash = 0xfff8dececa5eba11ULL;
constexpr uint64_t kRowHashSeed = 0x9e3779b97f4a7c15ULL;

inline uint64_t HashDoubleCell(double d) {
  if (std::isnan(d)) return kNanHash;
  int64_t as_int;
  if (DoubleIsExactInt64(d, &as_int)) return HashInt64(as_int);
  return HashDouble(d);
}

/// Cell-vs-Value equality matching Value::operator== on the typed paths
/// (same logical type on both sides by construction: the stored key Row was
/// materialized from the same column).
inline bool CellEqualsValue(const ColumnVector& col, size_t i, const Value& v) {
  if (col.IsNull(i)) return v.is_null();
  if (v.is_null()) return false;
  switch (col.storage) {
    case ColumnVector::Storage::kInt64:
      return v.int64_v() == col.ints[i];
    case ColumnVector::Storage::kDouble: {
      double a = col.doubles[i];
      double b = v.double_v();
      if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
      return a == b;
    }
    case ColumnVector::Storage::kString:
      return v.str() == col.strs[i];
    default:
      return col.values[i] == v;
  }
}

}  // namespace

uint64_t HashCell(const ColumnVector& col, size_t i) {
  if (col.IsNull(i)) return kNullHash;
  switch (col.storage) {
    case ColumnVector::Storage::kInt64:
      return HashInt64(col.ints[i]);
    case ColumnVector::Storage::kDouble:
      return HashDoubleCell(col.doubles[i]);
    case ColumnVector::Storage::kString:
      return HashBytes(col.strs[i]);
    default:
      return col.values[i].Hash();
  }
}

void HashKeyColumns(const std::vector<const ColumnVector*>& keys, size_t n,
                    std::vector<uint64_t>* out) {
  size_t base = out->size();
  out->resize(base + n, kRowHashSeed);
  uint64_t* h = out->data() + base;
  for (const ColumnVector* col : keys) {
    for (size_t i = 0; i < n; ++i) h[i] = HashCombine(h[i], HashCell(*col, i));
  }
}

VecGroupTable::VecGroupTable() : slots_(64, 0) {}

void VecGroupTable::Rehash(size_t new_capacity) {
  slots_.assign(new_capacity, 0);
  size_t mask = new_capacity - 1;
  for (size_t g = 0; g < keys_.size(); ++g) {
    size_t pos = hashes_[g] & mask;
    while (slots_[pos] != 0) pos = (pos + 1) & mask;
    slots_[pos] = static_cast<uint32_t>(g + 1);
  }
}

size_t VecGroupTable::FindOrInsert(const std::vector<const ColumnVector*>& keys,
                                   size_t row, uint64_t hash) {
  size_t mask = slots_.size() - 1;
  size_t pos = hash & mask;
  while (slots_[pos] != 0) {
    size_t g = slots_[pos] - 1;
    if (hashes_[g] == hash) {
      const Row& key = keys_[g];
      bool eq = true;
      for (size_t c = 0; c < keys.size() && eq; ++c) {
        eq = CellEqualsValue(*keys[c], row, key.fields[c]);
      }
      if (eq) return g;
    }
    pos = (pos + 1) & mask;
  }
  Row key;
  key.fields.reserve(keys.size());
  for (const ColumnVector* col : keys) key.fields.push_back(col->ValueAt(row));
  size_t g = keys_.size();
  keys_.push_back(std::move(key));
  hashes_.push_back(hash);
  slots_[pos] = static_cast<uint32_t>(g + 1);
  if ((keys_.size() + 1) * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
  return g;
}

}  // namespace vec
}  // namespace shark
