/// CompiledExpr::EvalBatch: column-at-a-time execution of the postfix
/// programs that CompiledExpr::Eval interprets row-at-a-time. Every
/// instruction either runs a type-specialized kernel over the window or
/// falls back to per-row evaluation of *that instruction only* (gathering
/// exact Values and running the same code Eval runs), so the two paths are
/// value-identical by construction. Lives here rather than in sql/ so the
/// vectorized module owns all batch code; it is a member of CompiledExpr for
/// access to the compiled program.

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "exec/vectorized/column_batch.h"
#include "sql/expr_compiler.h"

namespace shark {

namespace {

using vec::ColumnVector;
using Storage = vec::ColumnVector::Storage;

/// Value category of an operand, collapsing BOOLEAN/BIGINT/DATE (shared
/// int64 payload and comparison rules) into one integer category.
enum class Cat : uint8_t { kInt, kDbl, kStr, kNull, kGen };

ColumnVector AllNullVec(size_t n) {
  ColumnVector v;
  v.storage = Storage::kAllNull;
  v.type = TypeKind::kNull;
  v.n = n;
  return v;
}

ColumnVector MakeTyped(TypeKind t, Storage s, size_t n) {
  ColumnVector v;
  v.type = t;
  v.storage = s;
  v.n = n;
  switch (s) {
    case Storage::kInt64:
      v.ints.resize(n);
      v.nulls.assign(n, 0);
      break;
    case Storage::kDouble:
      v.doubles.resize(n);
      v.nulls.assign(n, 0);
      break;
    case Storage::kString:
      v.strs.resize(n);
      v.nulls.assign(n, 0);
      break;
    case Storage::kGeneric:
      v.values.resize(n);
      break;
    case Storage::kAllNull:
      break;
  }
  return v;
}

/// A stack operand: a borrowed slot column (indexed from the window base),
/// an owned kernel result (indexed from 0), or a uniform constant.
struct Ent {
  const ColumnVector* col = nullptr;
  ColumnVector owned;
  bool uniform = false;
  Value uval;
};

/// Flat read-only view of an operand for the kernels: one indexing scheme
/// regardless of borrowed/owned/uniform shape.
struct OpView {
  Cat cat = Cat::kGen;
  const ColumnVector* v = nullptr;
  size_t off = 0;
  bool uniform = false;
  Value uval;
  const uint8_t* np = nullptr;
  const int64_t* ip = nullptr;
  const double* dp = nullptr;
  const std::string_view* sp = nullptr;
  const Value* gp = nullptr;

  bool IsNull(size_t i) const {
    if (uniform) return uval.is_null();
    if (cat == Cat::kGen) return gp[off + i].is_null();
    return np != nullptr && np[off + i] != 0;
  }
  int64_t I(size_t i) const { return uniform ? uval.int64_v() : ip[off + i]; }
  double D(size_t i) const { return uniform ? uval.double_v() : dp[off + i]; }
  std::string_view S(size_t i) const {
    return uniform ? std::string_view(uval.str()) : sp[off + i];
  }
  /// Exact Value of the cell, as the row path would see it.
  Value Get(size_t i) const { return uniform ? uval : v->ValueAt(off + i); }
};

OpView UniformView(const Value& val) {
  OpView w;
  w.uniform = true;
  w.uval = val;
  switch (val.kind()) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      w.cat = Cat::kInt;
      break;
    case TypeKind::kDouble:
      w.cat = Cat::kDbl;
      break;
    case TypeKind::kString:
      w.cat = Cat::kStr;
      break;
    default:
      w.cat = Cat::kNull;
      break;
  }
  return w;
}

OpView ColumnView(const ColumnVector& cv, size_t off) {
  OpView w;
  w.v = &cv;
  w.off = off;
  w.np = cv.nulls.empty() ? nullptr : cv.nulls.data();
  switch (cv.storage) {
    case Storage::kInt64:
      w.cat = Cat::kInt;
      w.ip = cv.ints.data();
      break;
    case Storage::kDouble:
      w.cat = Cat::kDbl;
      w.dp = cv.doubles.data();
      break;
    case Storage::kString:
      w.cat = Cat::kStr;
      w.sp = cv.strs.data();
      break;
    case Storage::kGeneric:
      w.cat = Cat::kGen;
      w.gp = cv.values.data();
      break;
    case Storage::kAllNull:
      // Behaves exactly like a uniform NULL constant.
      w.cat = Cat::kNull;
      w.uniform = true;
      w.uval = Value::Null();
      break;
  }
  return w;
}

OpView ViewOf(const Ent& e, size_t base) {
  if (e.uniform) return UniformView(e.uval);
  if (e.col != nullptr) return ColumnView(*e.col, base);
  return ColumnView(e.owned, 0);
}

inline bool ApplyCmpOp(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    default:
      return cmp >= 0;  // kGe
  }
}

/// Comparison kernel. The per-cell `cmp` values reproduce Value::Compare
/// (NaN after all numerics, NaN == NaN, exact BIGINT-vs-DOUBLE ordering,
/// numerics before strings); for every non-null category pair cmp == 0 is
/// equivalent to Value::operator==, so kEq/kNe share the same loop.
template <typename CmpFn>
void CmpLoop(const OpView& l, const OpView& r, BinaryOp op, size_t n,
             ColumnVector* out, CmpFn cmp) {
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out->nulls[i] = 1;
    } else {
      out->ints[i] = ApplyCmpOp(op, cmp(i)) ? 1 : 0;
    }
  }
}

bool CmpKernel(const OpView& l, const OpView& r, BinaryOp op, size_t n,
               ColumnVector* out) {
  if (l.cat == Cat::kGen || r.cat == Cat::kGen) return false;
  if (l.cat == Cat::kNull || r.cat == Cat::kNull) {
    *out = AllNullVec(n);
    return true;
  }
  *out = MakeTyped(TypeKind::kBool, Storage::kInt64, n);
  if (l.cat == Cat::kInt && r.cat == Cat::kInt) {
    CmpLoop(l, r, op, n, out, [&](size_t i) {
      int64_t a = l.I(i), b = r.I(i);
      return a < b ? -1 : a > b ? 1 : 0;
    });
  } else if (l.cat == Cat::kDbl && r.cat == Cat::kDbl) {
    CmpLoop(l, r, op, n, out, [&](size_t i) {
      double a = l.D(i), b = r.D(i);
      bool an = std::isnan(a), bn = std::isnan(b);
      if (an || bn) return (an && bn) ? 0 : (an ? 1 : -1);
      return a < b ? -1 : a > b ? 1 : 0;
    });
  } else if (l.cat == Cat::kInt && r.cat == Cat::kDbl) {
    CmpLoop(l, r, op, n, out, [&](size_t i) {
      double b = r.D(i);
      if (std::isnan(b)) return -1;
      return CompareInt64Double(l.I(i), b);
    });
  } else if (l.cat == Cat::kDbl && r.cat == Cat::kInt) {
    CmpLoop(l, r, op, n, out, [&](size_t i) {
      double a = l.D(i);
      if (std::isnan(a)) return 1;
      return -CompareInt64Double(r.I(i), a);
    });
  } else if (l.cat == Cat::kStr && r.cat == Cat::kStr) {
    CmpLoop(l, r, op, n, out, [&](size_t i) {
      int c = l.S(i).compare(r.S(i));
      return c < 0 ? -1 : c > 0 ? 1 : 0;
    });
  } else if (l.cat == Cat::kStr) {
    CmpLoop(l, r, op, n, out, [](size_t) { return 1; });
  } else {
    CmpLoop(l, r, op, n, out, [](size_t) { return -1; });
  }
  return true;
}

bool ArithKernel(const OpView& l, const OpView& r, BinaryOp op, size_t n,
                 ColumnVector* out) {
  if (l.cat == Cat::kNull || r.cat == Cat::kNull) {
    *out = AllNullVec(n);
    return true;
  }
  bool lnum = l.cat == Cat::kInt || l.cat == Cat::kDbl;
  bool rnum = r.cat == Cat::kInt || r.cat == Cat::kDbl;
  if (!lnum || !rnum) return false;
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
      if (l.cat == Cat::kInt && r.cat == Cat::kInt) {
        *out = MakeTyped(TypeKind::kInt64, Storage::kInt64, n);
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNull(i) || r.IsNull(i)) {
            out->nulls[i] = 1;
            continue;
          }
          int64_t a = l.I(i), b = r.I(i);
          out->ints[i] = op == BinaryOp::kAdd   ? WrapAddInt64(a, b)
                         : op == BinaryOp::kSub ? WrapSubInt64(a, b)
                                                : WrapMulInt64(a, b);
        }
      } else {
        *out = MakeTyped(TypeKind::kDouble, Storage::kDouble, n);
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNull(i) || r.IsNull(i)) {
            out->nulls[i] = 1;
            continue;
          }
          double a = l.cat == Cat::kInt ? static_cast<double>(l.I(i)) : l.D(i);
          double b = r.cat == Cat::kInt ? static_cast<double>(r.I(i)) : r.D(i);
          out->doubles[i] = op == BinaryOp::kAdd   ? a + b
                            : op == BinaryOp::kSub ? a - b
                                                   : a * b;
        }
      }
      return true;
    case BinaryOp::kDiv: {
      *out = MakeTyped(TypeKind::kDouble, Storage::kDouble, n);
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          out->nulls[i] = 1;
          continue;
        }
        double b = r.cat == Cat::kInt ? static_cast<double>(r.I(i)) : r.D(i);
        if (b == 0.0) {
          out->nulls[i] = 1;
          continue;
        }
        double a = l.cat == Cat::kInt ? static_cast<double>(l.I(i)) : l.D(i);
        out->doubles[i] = a / b;
      }
      return true;
    }
    case BinaryOp::kMod: {
      *out = MakeTyped(TypeKind::kInt64, Storage::kInt64, n);
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          out->nulls[i] = 1;
          continue;
        }
        int64_t b = r.cat == Cat::kInt ? r.I(i) : SaturatingDoubleToInt64(r.D(i));
        if (b == 0) {
          out->nulls[i] = 1;
          continue;
        }
        int64_t a = l.cat == Cat::kInt ? l.I(i) : SaturatingDoubleToInt64(l.D(i));
        out->ints[i] = b == -1 ? 0 : a % b;
      }
      return true;
    }
    default:
      return false;
  }
}

/// Three-valued AND/OR over boolean int-storage operands (Combine3VL's
/// truth table).
bool AndOrKernel(const OpView& l, const OpView& r, bool is_and, size_t n,
                 ColumnVector* out) {
  auto boolish = [](const OpView& w) {
    return w.cat == Cat::kInt || w.cat == Cat::kNull;
  };
  if (!boolish(l) || !boolish(r)) return false;
  *out = MakeTyped(TypeKind::kBool, Storage::kInt64, n);
  for (size_t i = 0; i < n; ++i) {
    bool ln = l.IsNull(i), rn = r.IsNull(i);
    bool lb = !ln && l.I(i) != 0;
    bool rb = !rn && r.I(i) != 0;
    if (is_and) {
      bool lf = !ln && !lb;
      bool rf = !rn && !rb;
      if (lf || rf) {
        out->ints[i] = 0;
      } else if (ln || rn) {
        out->nulls[i] = 1;
      } else {
        out->ints[i] = 1;
      }
    } else {
      if (lb || rb) {
        out->ints[i] = 1;
      } else if (ln || rn) {
        out->nulls[i] = 1;
      } else {
        out->ints[i] = 0;
      }
    }
  }
  return true;
}

}  // namespace

void CompiledExpr::EvalBatch(const vec::ColumnBatch& batch, size_t begin,
                             size_t end, vec::ColumnVector* out) const {
  const size_t n = end - begin;
  std::vector<Ent> stack;
  stack.reserve(static_cast<size_t>(kMaxStackDepth));
  auto push_owned = [&stack](ColumnVector v) {
    stack.emplace_back();
    stack.back().owned = std::move(v);
  };
  auto push_uniform = [&stack](const Value& v) {
    stack.emplace_back();
    stack.back().uniform = true;
    stack.back().uval = v;
  };
  // Per-row fallback for a whole instruction: exact Values in, exact Values
  // out via `fn(i)`.
  auto per_row = [&](auto fn) {
    ColumnVector res = MakeTyped(TypeKind::kNull, Storage::kGeneric, n);
    for (size_t i = 0; i < n; ++i) res.values[i] = fn(i);
    return res;
  };

  for (const Instruction& ins : code_) {
    switch (ins.op) {
      case Op::kConst:
        push_uniform(constants_[static_cast<size_t>(ins.arg)]);
        break;
      case Op::kSlot: {
        stack.emplace_back();
        stack.back().col = &batch.cols[static_cast<size_t>(ins.arg)];
        break;
      }
      case Op::kCmpSlotConst: {
        OpView l = ColumnView(batch.cols[static_cast<size_t>(ins.arg)], begin);
        const Value& c = constants_[static_cast<size_t>(ins.arg2)];
        OpView r = UniformView(c);
        BinaryOp op = static_cast<BinaryOp>(ins.arg3);
        ColumnVector res;
        if (!CmpKernel(l, r, op, n, &res)) {
          res = per_row([&](size_t i) { return EvalBinaryScalar(op, l.Get(i), c); });
        }
        push_owned(std::move(res));
        break;
      }
      case Op::kBetweenSlotConst: {
        OpView w = ColumnView(batch.cols[static_cast<size_t>(ins.arg)], begin);
        const Value& lo = constants_[static_cast<size_t>(ins.arg2)];
        const Value& hi = constants_[static_cast<size_t>(ins.arg2) + 1];
        bool neg = ins.arg3 != 0;
        ColumnVector res;
        bool fast = false;
        if (w.cat == Cat::kInt && UniformView(lo).cat == Cat::kInt &&
            UniformView(hi).cat == Cat::kInt) {
          res = MakeTyped(TypeKind::kBool, Storage::kInt64, n);
          int64_t a = lo.int64_v(), b = hi.int64_v();
          for (size_t i = 0; i < n; ++i) {
            if (w.IsNull(i)) {
              res.nulls[i] = 1;
              continue;
            }
            int64_t v = w.I(i);
            bool in = v >= a && v <= b;
            res.ints[i] = (neg ? !in : in) ? 1 : 0;
          }
          fast = true;
        } else if (w.cat == Cat::kDbl && lo.kind() == TypeKind::kDouble &&
                   hi.kind() == TypeKind::kDouble && !std::isnan(lo.double_v()) &&
                   !std::isnan(hi.double_v())) {
          res = MakeTyped(TypeKind::kBool, Storage::kInt64, n);
          double a = lo.double_v(), b = hi.double_v();
          for (size_t i = 0; i < n; ++i) {
            if (w.IsNull(i)) {
              res.nulls[i] = 1;
              continue;
            }
            double v = w.D(i);
            // NaN sorts after every numeric: Compare(v, hi) > 0, so not "in".
            bool in = !std::isnan(v) && v >= a && v <= b;
            res.ints[i] = (neg ? !in : in) ? 1 : 0;
          }
          fast = true;
        } else if (w.cat == Cat::kStr && lo.kind() == TypeKind::kString &&
                   hi.kind() == TypeKind::kString) {
          res = MakeTyped(TypeKind::kBool, Storage::kInt64, n);
          std::string_view a = lo.str(), b = hi.str();
          for (size_t i = 0; i < n; ++i) {
            if (w.IsNull(i)) {
              res.nulls[i] = 1;
              continue;
            }
            std::string_view v = w.S(i);
            bool in = v.compare(a) >= 0 && v.compare(b) <= 0;
            res.ints[i] = (neg ? !in : in) ? 1 : 0;
          }
          fast = true;
        }
        if (!fast) {
          res = per_row([&](size_t i) {
            Value v = w.Get(i);
            if (v.is_null()) return Value::Null();
            bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
            return Value::Bool(neg ? !in : in);
          });
        }
        push_owned(std::move(res));
        break;
      }
      case Op::kNeg: {
        Ent e = std::move(stack.back());
        stack.pop_back();
        OpView w = ViewOf(e, begin);
        ColumnVector res;
        if (w.cat == Cat::kNull) {
          res = AllNullVec(n);
        } else if (w.cat == Cat::kInt) {
          res = MakeTyped(TypeKind::kInt64, Storage::kInt64, n);
          for (size_t i = 0; i < n; ++i) {
            if (w.IsNull(i)) {
              res.nulls[i] = 1;
            } else {
              res.ints[i] = WrapNegInt64(w.I(i));
            }
          }
        } else if (w.cat == Cat::kDbl) {
          res = MakeTyped(TypeKind::kDouble, Storage::kDouble, n);
          for (size_t i = 0; i < n; ++i) {
            if (w.IsNull(i)) {
              res.nulls[i] = 1;
            } else {
              res.doubles[i] = -w.D(i);
            }
          }
        } else {
          res = per_row([&](size_t i) {
            Value v = w.Get(i);
            if (v.is_null()) return v;
            return v.kind() == TypeKind::kDouble
                       ? Value::Double(-v.double_v())
                       : Value::Int64(WrapNegInt64(v.int64_v()));
          });
        }
        push_owned(std::move(res));
        break;
      }
      case Op::kNot: {
        Ent e = std::move(stack.back());
        stack.pop_back();
        OpView w = ViewOf(e, begin);
        ColumnVector res;
        if (w.cat == Cat::kNull) {
          res = AllNullVec(n);
        } else if (w.cat == Cat::kInt) {
          res = MakeTyped(TypeKind::kBool, Storage::kInt64, n);
          for (size_t i = 0; i < n; ++i) {
            if (w.IsNull(i)) {
              res.nulls[i] = 1;
            } else {
              res.ints[i] = w.I(i) != 0 ? 0 : 1;
            }
          }
        } else {
          res = per_row([&](size_t i) {
            Value v = w.Get(i);
            if (v.is_null()) return v;
            return Value::Bool(!v.bool_v());
          });
        }
        push_owned(std::move(res));
        break;
      }
      case Op::kBinary: {
        Ent re = std::move(stack.back());
        stack.pop_back();
        Ent le = std::move(stack.back());
        stack.pop_back();
        OpView l = ViewOf(le, begin);
        OpView r = ViewOf(re, begin);
        BinaryOp op = static_cast<BinaryOp>(ins.arg);
        ColumnVector res;
        bool done;
        if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
          done = AndOrKernel(l, r, op == BinaryOp::kAnd, n, &res);
        } else if (op == BinaryOp::kAdd || op == BinaryOp::kSub ||
                   op == BinaryOp::kMul || op == BinaryOp::kDiv ||
                   op == BinaryOp::kMod) {
          done = ArithKernel(l, r, op, n, &res);
        } else {
          done = CmpKernel(l, r, op, n, &res);
        }
        if (!done) {
          res = per_row(
              [&](size_t i) { return EvalBinaryScalar(op, l.Get(i), r.Get(i)); });
        }
        push_owned(std::move(res));
        break;
      }
      case Op::kBuiltin:
      case Op::kUdf: {
        size_t argc = static_cast<size_t>(ins.arg2);
        std::vector<OpView> avs;
        avs.reserve(argc);
        for (size_t a = stack.size() - argc; a < stack.size(); ++a) {
          avs.push_back(ViewOf(stack[a], begin));
        }
        ColumnVector res;
        bool fast = false;
        if (ins.op == Op::kBuiltin) {
          const std::string& name = builtin_names_[static_cast<size_t>(ins.arg)];
          // SUBSTR kernel: produces subviews of the input views, so the
          // source must be a real column (a uniform constant's storage dies
          // with this instruction).
          if ((name == "SUBSTR" || name == "SUBSTRING") &&
              (argc == 2 || argc == 3) && avs[0].cat == Cat::kStr &&
              !avs[0].uniform) {
            const OpView& s = avs[0];
            const OpView& a1 = avs[1];
            res = MakeTyped(TypeKind::kString, Storage::kString, n);
            for (size_t i = 0; i < n; ++i) {
              if (s.IsNull(i) || a1.IsNull(i)) {
                res.nulls[i] = 1;
                continue;
              }
              std::string_view sv = s.S(i);
              int64_t start = a1.Get(i).AsInt64();
              int64_t len = static_cast<int64_t>(sv.size());
              if (argc == 3 && !avs[2].IsNull(i)) len = avs[2].Get(i).AsInt64();
              if (start < 1) start = 1;
              if (start > static_cast<int64_t>(sv.size()) || len <= 0) {
                res.strs[i] = std::string_view();
                continue;
              }
              res.strs[i] = sv.substr(static_cast<size_t>(start - 1),
                                      static_cast<size_t>(len));
            }
            fast = true;
          }
          if (!fast) {
            res = per_row([&](size_t i) {
              std::vector<Value> args;
              args.reserve(argc);
              for (const OpView& w : avs) args.push_back(w.Get(i));
              return EvalBuiltin(name, args);
            });
          }
        } else {
          const UdfRegistry::UdfInfo* udf = udfs_[static_cast<size_t>(ins.arg)];
          res = per_row([&](size_t i) {
            std::vector<Value> args;
            args.reserve(argc);
            for (const OpView& w : avs) args.push_back(w.Get(i));
            return udf->fn(args);
          });
        }
        stack.resize(stack.size() - argc);
        push_owned(std::move(res));
        break;
      }
      case Op::kBetween: {
        OpView hi = ViewOf(stack[stack.size() - 1], begin);
        OpView lo = ViewOf(stack[stack.size() - 2], begin);
        OpView v = ViewOf(stack[stack.size() - 3], begin);
        bool neg = ins.arg != 0;
        ColumnVector res = per_row([&](size_t i) {
          Value vv = v.Get(i), lv = lo.Get(i), hv = hi.Get(i);
          if (vv.is_null() || lv.is_null() || hv.is_null()) return Value::Null();
          bool in = vv.Compare(lv) >= 0 && vv.Compare(hv) <= 0;
          return Value::Bool(neg ? !in : in);
        });
        stack.resize(stack.size() - 3);
        push_owned(std::move(res));
        break;
      }
      case Op::kInList: {
        size_t count = static_cast<size_t>(ins.arg2);
        bool neg = ins.arg != 0;
        OpView v = ViewOf(stack[stack.size() - count - 1], begin);
        std::vector<OpView> items;
        items.reserve(count);
        for (size_t a = stack.size() - count; a < stack.size(); ++a) {
          items.push_back(ViewOf(stack[a], begin));
        }
        ColumnVector res = per_row([&](size_t i) {
          Value vv = v.Get(i);
          bool v_null = vv.is_null();
          bool found = false;
          for (const OpView& it : items) {
            Value iv = it.Get(i);
            if (!v_null && !iv.is_null() && vv == iv) found = true;
          }
          return v_null ? Value::Null() : Value::Bool(neg ? !found : found);
        });
        stack.resize(stack.size() - count - 1);
        push_owned(std::move(res));
        break;
      }
      case Op::kIsNull: {
        Ent e = std::move(stack.back());
        stack.pop_back();
        OpView w = ViewOf(e, begin);
        bool neg = ins.arg != 0;
        ColumnVector res = MakeTyped(TypeKind::kBool, Storage::kInt64, n);
        for (size_t i = 0; i < n; ++i) {
          bool is_null = w.IsNull(i);
          res.ints[i] = (neg ? !is_null : is_null) ? 1 : 0;
        }
        push_owned(std::move(res));
        break;
      }
      case Op::kLike: {
        OpView p = ViewOf(stack[stack.size() - 1], begin);
        OpView v = ViewOf(stack[stack.size() - 2], begin);
        bool neg = ins.arg != 0;
        ColumnVector res = per_row([&](size_t i) {
          Value vv = v.Get(i), pv = p.Get(i);
          if (vv.is_null() || pv.is_null()) return Value::Null();
          bool m = LikeMatch(vv.str(), pv.str());
          return Value::Bool(neg ? !m : m);
        });
        stack.resize(stack.size() - 2);
        push_owned(std::move(res));
        break;
      }
      case Op::kCase: {
        size_t whens = static_cast<size_t>(ins.arg2);
        bool has_else = ins.arg != 0;
        size_t total = 2 * whens + (has_else ? 1 : 0);
        size_t base = stack.size() - total;
        std::vector<OpView> vs;
        vs.reserve(total);
        for (size_t a = base; a < stack.size(); ++a) {
          vs.push_back(ViewOf(stack[a], begin));
        }
        ColumnVector res = per_row([&](size_t i) {
          for (size_t w = 0; w < whens; ++w) {
            Value cond = vs[2 * w].Get(i);
            if (!cond.is_null() && cond.bool_v()) return vs[2 * w + 1].Get(i);
          }
          return has_else ? vs[total - 1].Get(i) : Value::Null();
        });
        stack.resize(base);
        push_owned(std::move(res));
        break;
      }
    }
  }
  SHARK_CHECK(stack.size() == 1);

  Ent e = std::move(stack.back());
  if (e.uniform) {
    if (e.uval.is_null()) {
      *out = AllNullVec(n);
    } else {
      ColumnVector v;
      v.storage = Storage::kGeneric;
      v.type = e.uval.kind();
      v.n = n;
      v.values.assign(n, e.uval);
      *out = std::move(v);
    }
  } else if (e.col != nullptr) {
    const ColumnVector& src = *e.col;
    ColumnVector v;
    v.type = src.type;
    v.storage = src.storage;
    v.n = n;
    if (!src.nulls.empty()) {
      v.nulls.assign(src.nulls.begin() + static_cast<long>(begin),
                     src.nulls.begin() + static_cast<long>(end));
    }
    switch (src.storage) {
      case Storage::kInt64:
        v.ints.assign(src.ints.begin() + static_cast<long>(begin),
                      src.ints.begin() + static_cast<long>(end));
        break;
      case Storage::kDouble:
        v.doubles.assign(src.doubles.begin() + static_cast<long>(begin),
                         src.doubles.begin() + static_cast<long>(end));
        break;
      case Storage::kString:
        v.strs.assign(src.strs.begin() + static_cast<long>(begin),
                      src.strs.begin() + static_cast<long>(end));
        break;
      case Storage::kGeneric:
        v.values.assign(src.values.begin() + static_cast<long>(begin),
                        src.values.begin() + static_cast<long>(end));
        break;
      case Storage::kAllNull:
        break;
    }
    *out = std::move(v);
  } else {
    *out = std::move(e.owned);
  }
}

}  // namespace shark
