#ifndef SHARK_RDD_PAIR_RDD_H_
#define SHARK_RDD_PAIR_RDD_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/cardinality.h"
#include "rdd/rdd.h"

namespace shark {

// ---------------------------------------------------------------------------
// Map-side shuffle dependencies
// ---------------------------------------------------------------------------

namespace internal_shuffle {

/// Charges the engine-profile-dependent cost of materializing map output
/// (§5 "Memory-based Shuffle": Shark keeps map outputs in memory; Hadoop
/// serializes, sorts and writes them to local disk).
inline void ChargeMapOutputWrite(uint64_t bytes, uint64_t records,
                                 uint64_t input_records, TaskContext* tctx) {
  if (tctx->profile().sort_before_shuffle) {
    tctx->work().sort_records +=
        tctx->profile().sort_full_map_input ? input_records : records;
  }
  if (tctx->profile().shuffle_through_disk) {
    tctx->work().ser_bytes += bytes;
    tctx->work().disk_write_bytes += bytes;
  }
}

/// MapReduce job chains materialize every reduce output to the replicated
/// DFS and read it back in the next job's map phase (§7 "Intermediate
/// Outputs"); general-DAG engines skip this entirely.
inline void ChargeStageMaterialization(uint64_t bytes, TaskContext* tctx) {
  if (!tctx->profile().materialize_stages_to_dfs || bytes == 0) return;
  tctx->work().ser_bytes += bytes;
  tctx->work().dfs_write_bytes += bytes;
  tctx->work().disk_read_bytes += bytes;
  tctx->work().binary_deser_bytes += bytes;
}

template <typename K>
void AddKeyToStats(const K& key, HeavyHitters* hh, ApproxHistogram* hist) {
  hh->Add(KeyHash(key));
  if constexpr (std::is_arithmetic_v<K>) {
    hist->Add(static_cast<double>(key));
  }
}

}  // namespace internal_shuffle

/// Hash-partitions elements into buckets with a caller-supplied bucket
/// function; no map-side combining. Used for DISTRIBUTE BY, co-partitioned
/// loading, co-group (join) inputs and PDE pre-shuffles.
template <typename T>
class PlainShuffleDep final : public ShuffleDependency {
 public:
  using BucketFn = std::function<int(const T&)>;
  using StatsFn = std::function<void(const T&, HeavyHitters*, ApproxHistogram*)>;

  PlainShuffleDep(RddPtr<T> parent, int num_buckets, BucketFn bucket_fn,
                  StatsFn stats_fn = nullptr)
      : ShuffleDependency(parent, num_buckets),
        typed_parent_(parent),
        bucket_fn_(std::move(bucket_fn)),
        stats_fn_(std::move(stats_fn)) {}

  MapOutput PartitionBlock(const BlockData& block,
                           TaskContext* tctx) const override {
    const auto& in = *std::static_pointer_cast<const std::vector<T>>(block);
    std::vector<std::vector<T>> buckets(static_cast<size_t>(num_buckets_));
    for (const T& x : in) {
      int b = bucket_fn_(x);
      buckets[static_cast<size_t>(b)].push_back(x);
    }
    tctx->work().rows_processed += in.size();
    internal_shuffle::ChargeMapOutputWrite(ApproxSizeOfRange(in), in.size(),
                                           in.size(), tctx);
    MapOutput out;
    out.on_disk = tctx->profile().shuffle_through_disk;
    out.buckets.reserve(buckets.size());
    for (auto& b : buckets) {
      // Plain repartitioning scales linearly with the input: no adjustment.
      out.bucket_bytes.push_back(ApproxSizeOfRange(b));
      out.bucket_records.push_back(b.size());
      out.buckets.push_back(std::make_shared<const std::vector<T>>(std::move(b)));
    }
    return out;
  }

  void CollectKeyStats(const BlockData& bucket, HeavyHitters* hh,
                       ApproxHistogram* hist) const override {
    if (!stats_fn_) return;
    const auto& in = *std::static_pointer_cast<const std::vector<T>>(bucket);
    for (const T& x : in) stats_fn_(x, hh, hist);
  }

  const RddPtr<T>& typed_parent() const { return typed_parent_; }

 private:
  RddPtr<T> typed_parent_;
  BucketFn bucket_fn_;
  StatsFn stats_fn_;
};

/// Convenience: hash-partition a key-value RDD by key.
template <typename K, typename V>
std::shared_ptr<PlainShuffleDep<std::pair<K, V>>> MakeHashPartitionDep(
    RddPtr<std::pair<K, V>> parent, int num_buckets) {
  using P = std::pair<K, V>;
  return std::make_shared<PlainShuffleDep<P>>(
      parent, num_buckets,
      [num_buckets](const P& p) {
        return static_cast<int>(KeyHash(p.first) %
                                static_cast<uint64_t>(num_buckets));
      },
      [](const P& p, HeavyHitters* hh, ApproxHistogram* hist) {
        internal_shuffle::AddKeyToStats(p.first, hh, hist);
      });
}

/// Hash-partitions (K,V) pairs by key with map-side combining into combiner
/// type C (Spark's combineByKey); this is what makes large-group-count
/// aggregations shuffle only one record per (task, group).
template <typename K, typename V, typename C>
class CombiningShuffleDep final : public ShuffleDependency {
 public:
  using CreateFn = std::function<C(const V&)>;
  using MergeValueFn = std::function<void(C&, const V&)>;

  CombiningShuffleDep(RddPtr<std::pair<K, V>> parent, int num_buckets,
                      CreateFn create, MergeValueFn merge_value)
      : ShuffleDependency(parent, num_buckets),
        typed_parent_(parent),
        create_(std::move(create)),
        merge_value_(std::move(merge_value)) {}

  MapOutput PartitionBlock(const BlockData& block,
                           TaskContext* tctx) const override {
    const auto& in =
        *std::static_pointer_cast<const std::vector<std::pair<K, V>>>(block);
    // Combine across the whole task first, THEN split into buckets: the map
    // task ships at most one record per distinct key regardless of how
    // fine-grained the bucket count is.
    std::unordered_map<K, C, KeyHasher<K>> combined;
    for (const auto& [k, v] : in) {
      auto it = combined.find(k);
      if (it == combined.end()) {
        combined.emplace(k, create_(v));
      } else {
        merge_value_(it->second, v);
      }
    }
    tctx->work().rows_processed += in.size();
    tctx->work().hash_records += in.size();
    // The combiner's output is bounded by the distinct keys the task sees.
    // Fixed key populations saturate (shuffle volume stays flat at virtual
    // scale); growing populations (unique-id-like keys) keep scaling. The
    // split-overlap statistics distinguish the two; pre-divide the reported
    // bytes so the cost model's uniform scaling yields faithful volumes.
    SampleCardinality sample;
    sample.n = static_cast<double>(in.size());
    sample.d = static_cast<double>(combined.size());
    {
      std::unordered_set<uint64_t> first_half;
      std::unordered_set<uint64_t> second_half;
      size_t half = in.size() / 2;
      for (size_t i = 0; i < in.size(); ++i) {
        (i < half ? first_half : second_half).insert(KeyHash(in[i].first));
      }
      sample.d_first = static_cast<double>(first_half.size());
      sample.d_second = static_cast<double>(second_half.size());
      for (uint64_t k : first_half) {
        if (second_half.count(k) > 0) sample.overlap += 1.0;
      }
    }
    double growth = DistinctGrowthFactorSplit(sample, tctx->virtual_scale());
    double byte_adjust = growth / std::max(tctx->virtual_scale(), 1.0);

    std::vector<std::vector<std::pair<K, C>>> buckets(
        static_cast<size_t>(num_buckets_));
    uint64_t distinct = combined.size();
    for (auto& [k, c] : combined) {
      auto b = static_cast<size_t>(KeyHash(k) %
                                   static_cast<uint64_t>(num_buckets_));
      buckets[b].emplace_back(k, std::move(c));
    }
    MapOutput out;
    out.on_disk = tctx->profile().shuffle_through_disk;
    out.buckets.reserve(buckets.size());
    uint64_t out_bytes = 0;
    uint64_t out_records = 0;
    uint64_t raw_bytes = 0;  // resident combine-table size, unadjusted
    for (auto& bucket : buckets) {
      raw_bytes += ApproxSizeOfRange(bucket);
      uint64_t adjusted = static_cast<uint64_t>(
          static_cast<double>(ApproxSizeOfRange(bucket)) * byte_adjust);
      out_records += bucket.size();
      out_bytes += adjusted;
      out.bucket_bytes.push_back(adjusted);
      out.bucket_records.push_back(bucket.size());
      out.bucket_cost_scale.push_back(byte_adjust);
      out.buckets.push_back(
          std::make_shared<const std::vector<std::pair<K, C>>>(std::move(bucket)));
    }
    // The combine table held one (key, combiner) pair per distinct key;
    // when it exceeds the task's budget the combiner degrades to grace-hash
    // partitioning (spill I/O charged by the context).
    tctx->ReserveOrSpillHash(raw_bytes, distinct);
    tctx->ReleaseAllWorkingSet();
    internal_shuffle::ChargeMapOutputWrite(out_bytes, out_records, in.size(),
                                           tctx);
    return out;
  }

  void CollectKeyStats(const BlockData& bucket, HeavyHitters* hh,
                       ApproxHistogram* hist) const override {
    const auto& in =
        *std::static_pointer_cast<const std::vector<std::pair<K, C>>>(bucket);
    for (const auto& [k, c] : in) {
      internal_shuffle::AddKeyToStats(k, hh, hist);
    }
  }

 private:
  RddPtr<std::pair<K, V>> typed_parent_;
  CreateFn create_;
  MergeValueFn merge_value_;
};

// ---------------------------------------------------------------------------
// Reduce-side RDDs
// ---------------------------------------------------------------------------

/// Reduce partition -> set of fine-grained buckets it is responsible for.
/// Identity (one bucket per reducer) unless PDE coalesced buckets via
/// bin-packing (§3.1.2).
using BucketAssignment = std::vector<std::vector<int>>;

inline BucketAssignment IdentityAssignment(int num_buckets) {
  BucketAssignment a(static_cast<size_t>(num_buckets));
  for (int i = 0; i < num_buckets; ++i) a[static_cast<size_t>(i)] = {i};
  return a;
}

/// Final merge of map-side combiners: one output record per key.
template <typename K, typename C>
class ShuffledReduceRdd final : public TypedRdd<std::pair<K, C>> {
 public:
  using MergeCombinersFn = std::function<void(C&, C&&)>;

  ShuffledReduceRdd(ClusterContext* ctx,
                    std::shared_ptr<ShuffleDependency> dep,
                    MergeCombinersFn merge, BucketAssignment assignment,
                    std::string label = "shuffledReduce")
      : TypedRdd<std::pair<K, C>>(ctx, std::move(label)),
        dep_(dep),
        merge_(std::move(merge)),
        assignment_(std::move(assignment)) {
    this->deps_.push_back(Dependency{nullptr, dep});
  }

  int num_partitions() const override {
    return static_cast<int>(assignment_.size());
  }

  typename TypedRdd<std::pair<K, C>>::Block Compute(
      int p, TaskContext* tctx) const override {
    double effective_records = 0.0;
    std::vector<BlockData> buckets = tctx->FetchShuffleBuckets(
        dep_->shuffle_id(), assignment_[static_cast<size_t>(p)],
        &effective_records);
    std::unordered_map<K, C, KeyHasher<K>> merged;
    uint64_t records_in = 0;
    // Per-record reduce charges use the cardinality-adjusted record count so
    // that the cost model's uniform scaling stays faithful.
    tctx->work().hash_records += static_cast<uint64_t>(effective_records);
    tctx->work().rows_processed += static_cast<uint64_t>(effective_records);
    for (const BlockData& b : buckets) {
      auto vec = std::static_pointer_cast<const std::vector<std::pair<K, C>>>(b);
      records_in += vec->size();
      for (const auto& [k, c] : *vec) {
        auto it = merged.find(k);
        if (it == merged.end()) {
          merged.emplace(k, c);
        } else {
          merge_(it->second, C(c));
        }
      }
    }
    typename TypedRdd<std::pair<K, C>>::Block out;
    out.reserve(merged.size());
    for (auto& [k, c] : merged) out.emplace_back(k, std::move(c));
    // External hash aggregation: the merge table held one combiner per key;
    // past the task's budget it degrades to grace-hash partitions on local
    // disk merged one at a time.
    tctx->ReserveOrSpillHash(ApproxSizeOfRange(out),
                             static_cast<uint64_t>(effective_records));
    tctx->ReleaseAllWorkingSet();
    // The reduce output is one record per key — cardinality-bounded, so its
    // materialization bytes get the same distinct-growth adjustment as the
    // map-side combiner outputs.
    double adjust = DistinctGrowthFactor(static_cast<double>(records_in),
                                         static_cast<double>(out.size()),
                                         tctx->virtual_scale()) /
                    std::max(tctx->virtual_scale(), 1.0);
    internal_shuffle::ChargeStageMaterialization(
        static_cast<uint64_t>(static_cast<double>(ApproxSizeOfRange(out)) * adjust),
        tctx);
    return out;
  }

 private:
  std::shared_ptr<ShuffleDependency> dep_;
  MergeCombinersFn merge_;
  BucketAssignment assignment_;
};

/// Group-by-key: one (key, all values) record per key.
template <typename K, typename V>
class ShuffledGroupRdd final
    : public TypedRdd<std::pair<K, std::vector<V>>> {
 public:
  ShuffledGroupRdd(ClusterContext* ctx, std::shared_ptr<ShuffleDependency> dep,
                   BucketAssignment assignment, std::string label = "groupBy")
      : TypedRdd<std::pair<K, std::vector<V>>>(ctx, std::move(label)),
        dep_(dep),
        assignment_(std::move(assignment)) {
    this->deps_.push_back(Dependency{nullptr, dep});
  }

  int num_partitions() const override {
    return static_cast<int>(assignment_.size());
  }

  typename TypedRdd<std::pair<K, std::vector<V>>>::Block Compute(
      int p, TaskContext* tctx) const override {
    std::vector<BlockData> buckets = tctx->FetchShuffleBuckets(
        dep_->shuffle_id(), assignment_[static_cast<size_t>(p)]);
    std::unordered_map<K, std::vector<V>, KeyHasher<K>> groups;
    uint64_t records_in = 0;
    for (const BlockData& b : buckets) {
      auto vec = std::static_pointer_cast<const std::vector<std::pair<K, V>>>(b);
      tctx->work().hash_records += vec->size();
      tctx->work().rows_processed += vec->size();
      records_in += vec->size();
      for (const auto& [k, v] : *vec) groups[k].push_back(v);
    }
    typename TypedRdd<std::pair<K, std::vector<V>>>::Block out;
    out.reserve(groups.size());
    for (auto& [k, vs] : groups) out.emplace_back(k, std::move(vs));
    // The group table holds every value; large groups degrade to grace-hash
    // spill partitions past the task's budget.
    tctx->ReserveOrSpillHash(ApproxSizeOfRange(out), records_in);
    tctx->ReleaseAllWorkingSet();
    internal_shuffle::ChargeStageMaterialization(ApproxSizeOfRange(out), tctx);
    return out;
  }

 private:
  std::shared_ptr<ShuffleDependency> dep_;
  BucketAssignment assignment_;
};

/// Shuffle (co-group) join input: for each key, the values from both sides.
template <typename K, typename V, typename W>
class CoGroupedRdd final
    : public TypedRdd<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> {
 public:
  using Element = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;

  CoGroupedRdd(ClusterContext* ctx, std::shared_ptr<ShuffleDependency> left,
               std::shared_ptr<ShuffleDependency> right,
               BucketAssignment assignment, std::string label = "cogroup")
      : TypedRdd<Element>(ctx, std::move(label)),
        left_(left),
        right_(right),
        assignment_(std::move(assignment)) {
    SHARK_CHECK(left->num_buckets() == right->num_buckets());
    this->deps_.push_back(Dependency{nullptr, left});
    this->deps_.push_back(Dependency{nullptr, right});
  }

  int num_partitions() const override {
    return static_cast<int>(assignment_.size());
  }

  typename TypedRdd<Element>::Block Compute(int p,
                                            TaskContext* tctx) const override {
    const auto& my_buckets = assignment_[static_cast<size_t>(p)];
    std::vector<BlockData> lbs =
        tctx->FetchShuffleBuckets(left_->shuffle_id(), my_buckets);
    std::vector<BlockData> rbs =
        tctx->FetchShuffleBuckets(right_->shuffle_id(), my_buckets);
    // Local join algorithm selection (§3.1.1): build the hash table over the
    // smaller input, stream the other. Costs are hash-record charges; the
    // output is identical either way.
    std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>,
                       KeyHasher<K>>
        table;
    uint64_t left_ws = 0, left_records = 0;
    for (const BlockData& b : lbs) {
      auto vec = std::static_pointer_cast<const std::vector<std::pair<K, V>>>(b);
      tctx->work().hash_records += vec->size();
      tctx->work().rows_processed += vec->size();
      left_ws += ApproxSizeOfRange(*vec);
      left_records += vec->size();
      for (const auto& [k, v] : *vec) table[k].first.push_back(v);
    }
    // Join build table: reserve the left side, then grow by the right side;
    // whichever extension overruns the task's budget degrades to grace-hash
    // spill partitions.
    tctx->ReserveOrSpillHash(left_ws, left_records);
    uint64_t right_ws = 0, right_records = 0;
    for (const BlockData& b : rbs) {
      auto vec = std::static_pointer_cast<const std::vector<std::pair<K, W>>>(b);
      tctx->work().hash_records += vec->size();
      tctx->work().rows_processed += vec->size();
      right_ws += ApproxSizeOfRange(*vec);
      right_records += vec->size();
      for (const auto& [k, w] : *vec) table[k].second.push_back(w);
    }
    tctx->GrowOrSpillHash(right_ws, right_records);
    typename TypedRdd<Element>::Block out;
    out.reserve(table.size());
    for (auto& [k, vw] : table) out.emplace_back(k, std::move(vw));
    tctx->ReleaseAllWorkingSet();
    internal_shuffle::ChargeStageMaterialization(ApproxSizeOfRange(out), tctx);
    return out;
  }

 private:
  std::shared_ptr<ShuffleDependency> left_;
  std::shared_ptr<ShuffleDependency> right_;
  BucketAssignment assignment_;
};

/// Reduce side of a plain repartition: concatenates assigned buckets.
template <typename T>
class RepartitionedRdd final : public TypedRdd<T> {
 public:
  RepartitionedRdd(ClusterContext* ctx, std::shared_ptr<ShuffleDependency> dep,
                   BucketAssignment assignment, std::string label = "repartition")
      : TypedRdd<T>(ctx, std::move(label)),
        dep_(dep),
        assignment_(std::move(assignment)) {
    this->deps_.push_back(Dependency{nullptr, dep});
  }

  int num_partitions() const override {
    return static_cast<int>(assignment_.size());
  }

  typename TypedRdd<T>::Block Compute(int p, TaskContext* tctx) const override {
    std::vector<BlockData> buckets = tctx->FetchShuffleBuckets(
        dep_->shuffle_id(), assignment_[static_cast<size_t>(p)]);
    typename TypedRdd<T>::Block out;
    for (const BlockData& b : buckets) {
      auto vec = std::static_pointer_cast<const std::vector<T>>(b);
      out.insert(out.end(), vec->begin(), vec->end());
    }
    tctx->work().rows_processed += out.size();
    internal_shuffle::ChargeStageMaterialization(ApproxSizeOfRange(out), tctx);
    return out;
  }

 private:
  std::shared_ptr<ShuffleDependency> dep_;
  BucketAssignment assignment_;
};

// ---------------------------------------------------------------------------
// Convenience factories
// ---------------------------------------------------------------------------

/// reduceByKey with map-side combining; one shuffle, `num_buckets` reducers.
template <typename K, typename V, typename MergeFn>
RddPtr<std::pair<K, V>> ReduceByKey(RddPtr<std::pair<K, V>> rdd, MergeFn merge,
                                    int num_buckets) {
  auto merge_value = [merge](V& acc, const V& v) { acc = merge(acc, v); };
  auto dep = std::make_shared<CombiningShuffleDep<K, V, V>>(
      rdd, num_buckets, [](const V& v) { return v; }, merge_value);
  return std::make_shared<ShuffledReduceRdd<K, V>>(
      rdd->context(), dep,
      [merge](V& acc, V&& v) { acc = merge(acc, std::move(v)); },
      IdentityAssignment(num_buckets), "reduceByKey");
}

/// groupByKey without combining.
template <typename K, typename V>
RddPtr<std::pair<K, std::vector<V>>> GroupByKey(RddPtr<std::pair<K, V>> rdd,
                                                int num_buckets) {
  auto dep = MakeHashPartitionDep<K, V>(rdd, num_buckets);
  return std::make_shared<ShuffledGroupRdd<K, V>>(
      rdd->context(), dep, IdentityAssignment(num_buckets));
}

/// Inner equi-join via co-group (the "shuffle join" of Fig 4).
template <typename K, typename V, typename W>
RddPtr<std::pair<K, std::pair<V, W>>> ShuffleJoin(RddPtr<std::pair<K, V>> left,
                                                  RddPtr<std::pair<K, W>> right,
                                                  int num_buckets) {
  auto ldep = MakeHashPartitionDep<K, V>(left, num_buckets);
  auto rdep = MakeHashPartitionDep<K, W>(right, num_buckets);
  auto cogrouped = std::make_shared<CoGroupedRdd<K, V, W>>(
      left->context(), ldep, rdep, IdentityAssignment(num_buckets), "shuffleJoin");
  using CoElem = typename CoGroupedRdd<K, V, W>::Element;
  using Out = std::pair<K, std::pair<V, W>>;
  return cogrouped->FlatMap(
      [](const CoElem& e) {
        std::vector<Out> out;
        for (const V& v : e.second.first) {
          for (const W& w : e.second.second) {
            out.push_back(Out{e.first, {v, w}});
          }
        }
        return out;
      },
      "joinOutput");
}

}  // namespace shark

#endif  // SHARK_RDD_PAIR_RDD_H_
