#ifndef SHARK_RDD_CONTEXT_H_
#define SHARK_RDD_CONTEXT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "rdd/block_manager.h"
#include "rdd/broadcast.h"
#include "rdd/rdd.h"
#include "rdd/scheduler.h"
#include "rdd/shuffle.h"
#include "sim/cluster.h"
#include "sim/cluster_metrics.h"
#include "sim/cost_model.h"
#include "sim/dfs.h"

namespace shark {

class MemoryManager;
class ThreadPool;

/// Serialized on-DFS size customization point (text vs binary SerDe). The
/// default assumes the in-memory footprint; Row provides an overload.
template <typename T>
uint64_t SerializedSizeOf(const T& v, DfsFormat /*format*/) {
  return ApproxSizeOf(v);
}

/// Cluster-level configuration of a context.
struct ClusterConfig {
  int num_nodes = 100;
  HardwareModel hardware;
  EngineProfile profile = EngineProfile::Shark();

  /// Each real row/byte processed stands for this many virtual rows/bytes:
  /// the benches run on ~1000x scaled-down data while reporting virtual
  /// times for paper-sized datasets. Per-node hardware constants and task
  /// overheads are NOT scaled (see DESIGN.md §5).
  double virtual_data_scale = 1.0;

  uint64_t seed = 42;

  /// Host threads that compute task bodies (real scans, joins, gradients).
  /// 0 = one per hardware thread; 1 = fully serial (the reference oracle).
  /// Virtual-time results are bit-for-bit identical for every setting — the
  /// discrete-event scheduler stays single-threaded and only the pure task
  /// bodies are computed ahead on workers (see DESIGN.md §8).
  int host_threads = 0;

  /// Straggler mitigation: launch backup copies of slow tasks (§2.3).
  bool speculation = true;
  double speculation_multiplier = 2.0;

  /// Hadoop-style schedulers assign at most this many new tasks per node per
  /// heartbeat (irrelevant when heartbeat_interval_sec == 0).
  int tasks_per_heartbeat = 2;

  /// Delay scheduling: rather than running a task remotely the moment any
  /// core frees up, wait up to this long for a core on one of its preferred
  /// nodes (cached partitions / DFS replicas). Zaharia et al.'s delay
  /// scheduling, which Spark uses; keeps cached reads node-local even when
  /// node availability is staggered.
  double locality_wait_sec = 3.0;
};

/// The driver/master: owns the simulated cluster, DFS, cache, shuffle state
/// and scheduler — the moral equivalent of a SparkContext plus the cluster
/// it runs on. Multiple contexts (e.g. a Shark one and a Hadoop one) can
/// share a Dfs so both engines query the same warehouse.
class ClusterContext {
 public:
  explicit ClusterContext(ClusterConfig config,
                          std::shared_ptr<Dfs> shared_dfs = nullptr);
  ~ClusterContext();

  ClusterContext(const ClusterContext&) = delete;
  ClusterContext& operator=(const ClusterContext&) = delete;

  const ClusterConfig& config() const { return config_; }
  const EngineProfile& profile() const { return config_.profile; }
  Cluster& cluster() { return *cluster_; }
  Dfs& dfs() { return *dfs_; }
  std::shared_ptr<Dfs> shared_dfs() { return dfs_; }
  BlockManager& block_manager() { return *block_manager_; }
  MemoryManager& memory_manager() { return *memory_manager_; }
  ShuffleManager& shuffle_manager() { return *shuffle_manager_; }
  BroadcastRegistry& broadcasts() { return broadcasts_; }
  DagScheduler& scheduler() { return *scheduler_; }
  const CostModel& cost_model() const { return *cost_model_; }
  double virtual_scale() const { return config_.virtual_data_scale; }

  /// Query-profile recorder. The SQL executor (or a test) brackets a query
  /// with BeginQuery/EndQuery; while active, the scheduler records every
  /// stage and task attempt into it (see common/trace.h). A cooperative job
  /// (JobManager) gets its own per-job collector so concurrent profiled
  /// queries do not interleave stages into one profile.
  TraceCollector& trace_collector() {
    JobState* job = CurrentJobState();
    if (job != nullptr && job->trace != nullptr) return *job->trace;
    return trace_collector_;
  }

  /// Cluster-wide metrics: counters/gauges/histograms across every layer, a
  /// virtual-time utilization timeline and per-stage skew reports. Mutated
  /// only from the scheduler's event loop (see sim/cluster_metrics.h).
  ClusterMetrics& metrics() { return *metrics_; }
  const ClusterMetrics& metrics() const { return *metrics_; }

  /// The worker pool task bodies are computed on, created lazily; nullptr
  /// when execution is effectively serial (host_threads resolves to 1).
  ThreadPool* thread_pool();
  /// Overrides config().host_threads (0 = hardware concurrency, 1 = serial);
  /// takes effect on the next job.
  void set_host_threads(int host_threads);
  /// host_threads with 0 resolved to the hardware concurrency.
  int effective_host_threads() const;

  /// Virtual clock.
  double now() const { return now_; }
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }

  /// Resets virtual time and core availability (not caches or shuffle
  /// outputs) — call between independent experiments.
  void ResetClock();

  /// Schedules a node failure/slowdown at a future virtual time.
  void InjectFault(const FaultEvent& event) { cluster_->InjectFault(event); }

  int NextRddId() { return next_rdd_id_++; }

  // -- RDD creation --------------------------------------------------------

  template <typename T>
  RddPtr<T> Parallelize(const std::vector<T>& data, int num_partitions) {
    return std::make_shared<ParallelizeRdd<T>>(this, data, num_partitions);
  }

  template <typename T>
  Result<RddPtr<T>> FromDfs(const std::string& file_name) {
    SHARK_ASSIGN_OR_RETURN(const DfsFile* file, dfs_->GetFile(file_name));
    return RddPtr<T>(std::make_shared<DfsRdd<T>>(this, file));
  }

  /// Registers a broadcast value; tasks retrieve it via
  /// GetBroadcast<T>(tctx, id).
  template <typename T>
  int Broadcast(T value) {
    uint64_t bytes = ApproxSizeOf(value);
    return broadcasts_.Register(
        std::make_shared<const T>(std::move(value)), bytes);
  }

  // -- Actions -------------------------------------------------------------

  template <typename R, typename T = typename R::Element>
  Result<std::vector<T>> Collect(const std::shared_ptr<R>& rdd) {
    SHARK_ASSIGN_OR_RETURN(std::vector<BlockData> blocks,
                           scheduler_->RunJob(rdd));
    std::vector<T> out;
    for (const BlockData& b : blocks) {
      auto vec = std::static_pointer_cast<const std::vector<T>>(b);
      out.insert(out.end(), vec->begin(), vec->end());
    }
    return out;
  }

  template <typename R, typename T = typename R::Element>
  Result<uint64_t> Count(const std::shared_ptr<R>& rdd) {
    auto counts = rdd->MapPartitions(
        [](int, const std::vector<T>& in, TaskContext*) {
          return std::vector<uint64_t>{in.size()};
        },
        "count");
    SHARK_ASSIGN_OR_RETURN(std::vector<uint64_t> sizes, Collect(counts));
    uint64_t total = 0;
    for (uint64_t s : sizes) total += s;
    return total;
  }

  /// Commutative-associative fold of all elements on the driver.
  template <typename R, typename F, typename T = typename R::Element>
  Result<T> Reduce(const std::shared_ptr<R>& rdd, T init, F merge) {
    auto partials = rdd->MapPartitions(
        [init, merge](int, const std::vector<T>& in, TaskContext* tctx) {
          T acc = init;
          for (const T& x : in) acc = merge(acc, x);
          tctx->work().rows_processed += in.size();
          return std::vector<T>{acc};
        },
        "reducePartial");
    SHARK_ASSIGN_OR_RETURN(std::vector<T> parts, Collect(partials));
    T acc = init;
    for (T& x : parts) acc = merge(acc, x);
    return acc;
  }

  /// Materializes an RDD as a (replicated) DFS file; the writing tasks pay
  /// serialization plus pipelined replica writes.
  template <typename R, typename T = typename R::Element>
  Result<const DfsFile*> SaveToDfs(const std::shared_ptr<R>& rdd,
                                   const std::string& name, DfsFormat format) {
    auto wrapped = rdd->MapPartitions(
        [format](int, const std::vector<T>& in, TaskContext* tctx) {
          uint64_t bytes = 0;
          for (const T& x : in) bytes += SerializedSizeOf(x, format);
          tctx->work().ser_bytes += bytes;
          tctx->work().dfs_write_bytes += bytes;
          return in;
        },
        "dfsWrite:" + name);
    SHARK_ASSIGN_OR_RETURN(std::vector<BlockData> blocks,
                           scheduler_->RunJob(wrapped));
    const std::vector<int>& nodes = scheduler_->last_job().result_nodes;
    std::vector<DfsBlock> dfs_blocks;
    dfs_blocks.reserve(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      auto vec = std::static_pointer_cast<const std::vector<T>>(blocks[i]);
      DfsBlock b;
      b.data = blocks[i];
      b.rows = vec->size();
      for (const T& x : *vec) b.bytes += SerializedSizeOf(x, format);
      if (i < nodes.size() && nodes[i] >= 0) b.replicas.push_back(nodes[i]);
      dfs_blocks.push_back(std::move(b));
    }
    SHARK_RETURN_NOT_OK(dfs_->CreateFile(name, format, std::move(dfs_blocks)));
    return dfs_->GetFile(name);
  }

 private:
  ClusterConfig config_;
  std::shared_ptr<Dfs> dfs_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<BlockManager> block_manager_;
  std::unique_ptr<MemoryManager> memory_manager_;
  std::unique_ptr<ShuffleManager> shuffle_manager_;
  std::unique_ptr<ClusterMetrics> metrics_;
  std::unique_ptr<DagScheduler> scheduler_;
  std::unique_ptr<ThreadPool> thread_pool_;
  BroadcastRegistry broadcasts_;
  TraceCollector trace_collector_;
  double now_ = 0.0;
  int next_rdd_id_ = 0;
};

/// Typed access to a broadcast value inside a task.
template <typename T>
std::shared_ptr<const T> GetBroadcast(TaskContext* tctx, int id) {
  return std::static_pointer_cast<const T>(tctx->FetchBroadcast(id));
}

}  // namespace shark

#endif  // SHARK_RDD_CONTEXT_H_
