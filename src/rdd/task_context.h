#ifndef SHARK_RDD_TASK_CONTEXT_H_
#define SHARK_RDD_TASK_CONTEXT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "rdd/block_manager.h"
#include "rdd/broadcast.h"
#include "rdd/shuffle.h"
#include "sim/cost_model.h"

namespace shark {

/// Execution context handed to a task. Carries the work counters the cost
/// model converts into virtual time, and gives compute functions access to
/// the cache, shuffle outputs and broadcasts with their access costs charged
/// automatically.
///
/// Error model: reduce-side fetches of shuffle outputs lost to node failures
/// do not abort the task; they record the missing (shuffle, map partition)
/// pairs and return what is available. The scheduler inspects
/// `missing_inputs` after the task body runs, discards the result, recomputes
/// the lost parents from lineage, and re-runs the task — mirroring Spark's
/// FetchFailed handling without using exceptions.
class TaskContext {
 public:
  TaskContext(int node, int partition, const EngineProfile* profile,
              BlockManager* block_manager, ShuffleManager* shuffle_manager,
              BroadcastRegistry* broadcasts, double virtual_scale = 1.0)
      : node_(node),
        partition_(partition),
        profile_(profile),
        block_manager_(block_manager),
        shuffle_manager_(shuffle_manager),
        broadcasts_(broadcasts),
        virtual_scale_(virtual_scale) {}

  int node() const { return node_; }
  /// The context-wide virtual data multiplier (see ClusterConfig); shuffle
  /// boundaries use it with the distinct-growth estimator to avoid scaling
  /// cardinality-bounded outputs linearly.
  double virtual_scale() const { return virtual_scale_; }
  int partition() const { return partition_; }
  const EngineProfile& profile() const { return *profile_; }
  BlockManager* block_manager() { return block_manager_; }
  ShuffleManager* shuffle_manager() { return shuffle_manager_; }

  TaskWork& work() { return work_; }
  const TaskWork& work() const { return work_; }

  bool HasMissingInput() const { return !missing_inputs_.empty(); }
  const std::vector<std::pair<int, int>>& missing_inputs() const {
    return missing_inputs_;
  }

  /// Fetches the given fine-grained buckets of every map output of a
  /// shuffle, charging transfer costs (memory/disk/network according to the
  /// engine profile and output locality). Missing map outputs are recorded
  /// in missing_inputs().
  std::vector<BlockData> FetchShuffleBuckets(int shuffle_id,
                                             const std::vector<int>& buckets,
                                             double* effective_records = nullptr) {
    std::vector<BlockData> out;
    int num_maps = shuffle_manager_->NumMapPartitions(shuffle_id);
    for (int m = 0; m < num_maps; ++m) {
      const MapOutput* mo = shuffle_manager_->GetMapOutput(shuffle_id, m);
      if (mo == nullptr || !mo->present) {
        missing_inputs_.emplace_back(shuffle_id, m);
        continue;
      }
      uint64_t bytes = 0;
      for (int b : buckets) {
        const auto bi = static_cast<size_t>(b);
        if (mo->buckets[bi] != nullptr && mo->bucket_records[bi] > 0) {
          out.push_back(mo->buckets[bi]);
        }
        bytes += mo->bucket_bytes[bi];
        if (effective_records != nullptr) {
          double cost_scale = mo->bucket_cost_scale.empty()
                                  ? 1.0
                                  : mo->bucket_cost_scale[bi];
          *effective_records +=
              static_cast<double>(mo->bucket_records[bi]) * cost_scale;
        }
      }
      if (bytes == 0) continue;
      if (profile_->shuffle_through_disk) {
        // The serving side reads its spilled map output from disk (one seek
        // per map output consulted), then ships it if remote.
        work_.disk_read_bytes += bytes;
        work_.disk_seeks += 1;
        if (mo->node != node_) work_.net_read_bytes += bytes;
      } else {
        if (mo->node == node_) {
          work_.mem_read_bytes += bytes;
        } else {
          work_.net_read_bytes += bytes;
        }
      }
    }
    return out;
  }

  /// Fetches a broadcast value, charging the one-time per-node transfer.
  BlockData FetchBroadcast(int id) {
    uint64_t fetch_bytes = 0;
    BlockData data = broadcasts_->Fetch(id, node_, &fetch_bytes);
    work_.net_read_bytes += fetch_bytes;
    return data;
  }

 private:
  int node_;
  int partition_;
  const EngineProfile* profile_;
  BlockManager* block_manager_;
  ShuffleManager* shuffle_manager_;
  BroadcastRegistry* broadcasts_;
  double virtual_scale_;
  TaskWork work_;
  std::vector<std::pair<int, int>> missing_inputs_;
};

}  // namespace shark

#endif  // SHARK_RDD_TASK_CONTEXT_H_
