#ifndef SHARK_RDD_TASK_CONTEXT_H_
#define SHARK_RDD_TASK_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/trace.h"
#include "mem/memory_manager.h"
#include "rdd/block_manager.h"
#include "rdd/broadcast.h"
#include "rdd/shuffle.h"
#include "sim/cost_model.h"

namespace shark {

/// A cost charge whose amount depends on which node the task eventually runs
/// on. Task bodies are *pure*: they may execute on any host thread before the
/// scheduler has picked a node, so location-dependent reads are recorded as
/// conditional charges and resolved by the scheduler at launch time, when the
/// (node, core) placement is known.
struct DeferredCharge {
  enum class Kind : uint8_t {
    kMemOrNet,       // memory read if run on `home`, else network read
    kNetIfRemote,    // network read only if not run on `home`
    kNetIfNoReplica  // network read only if no replica is local
  };
  Kind kind = Kind::kMemOrNet;
  uint64_t bytes = 0;
  int home = -1;              // kMemOrNet / kNetIfRemote
  std::vector<int> replicas;  // kNetIfNoReplica
};

/// Applies the launch-node-dependent part of a task's cost to `work`.
inline void ResolveDeferredCharges(const std::vector<DeferredCharge>& charges,
                                   int node, TaskWork* work) {
  for (const DeferredCharge& c : charges) {
    switch (c.kind) {
      case DeferredCharge::Kind::kMemOrNet:
        if (c.home == node) {
          work->mem_read_bytes += c.bytes;
        } else {
          work->net_read_bytes += c.bytes;
        }
        break;
      case DeferredCharge::Kind::kNetIfRemote:
        if (c.home != node) work->net_read_bytes += c.bytes;
        break;
      case DeferredCharge::Kind::kNetIfNoReplica: {
        bool local = false;
        for (int r : c.replicas) {
          if (r == node) local = true;
        }
        if (!local) work->net_read_bytes += c.bytes;
        break;
      }
    }
  }
}

/// One logged block-cache access. Task bodies never mutate the shared
/// BlockManager (other host threads are concurrently reading it); they log
/// their accesses, and the scheduler replays the logs of *committed* tasks in
/// commit order — so the cache evolves exactly as if the committed tasks had
/// run one after another.
struct CacheOp {
  bool is_put = false;
  int rdd_id = 0;
  int partition = 0;
  BlockData data;      // put only
  uint64_t bytes = 0;  // put only
  int node = -1;       // filled in by the scheduler at commit time
};

/// Execution context handed to a task. Carries the work counters the cost
/// model converts into virtual time, and gives compute functions access to
/// the cache, shuffle outputs and broadcasts with their access costs charged
/// automatically.
///
/// Purity contract (host-parallel execution): a task body may run on any host
/// thread, at any wall-clock moment between stage start and its virtual-time
/// launch. It must therefore be a pure function of (partition, the shared
/// state frozen at stage start, its private rng()). The context enforces this
/// by construction: shared structures are only read (BlockManager::Peek,
/// broadcast data), own writes go to a task-local overlay plus a log, and
/// location-dependent costs become DeferredCharges resolved at launch.
///
/// Error model: reduce-side fetches of shuffle outputs lost to node failures
/// do not abort the task; they record the missing (shuffle, map partition)
/// pairs and return what is available. The scheduler inspects
/// `missing_inputs` after the task body runs, discards the result, recomputes
/// the lost parents from lineage, and re-runs the task — mirroring Spark's
/// FetchFailed handling without using exceptions.
class TaskContext {
 public:
  TaskContext(int partition, const EngineProfile* profile,
              const BlockManager* block_manager,
              const ShuffleManager* shuffle_manager,
              const BroadcastRegistry* broadcasts, double virtual_scale = 1.0,
              uint64_t rng_seed = 0,
              uint64_t mem_budget = ~static_cast<uint64_t>(0))
      : partition_(partition),
        profile_(profile),
        block_manager_(block_manager),
        shuffle_manager_(shuffle_manager),
        broadcasts_(broadcasts),
        virtual_scale_(virtual_scale),
        rng_seed_(rng_seed),
        mem_budget_(mem_budget) {}

  /// The context-wide virtual data multiplier (see ClusterConfig); shuffle
  /// boundaries use it with the distinct-growth estimator to avoid scaling
  /// cardinality-bounded outputs linearly.
  double virtual_scale() const { return virtual_scale_; }
  int partition() const { return partition_; }
  const EngineProfile& profile() const { return *profile_; }

  /// Deterministic per-task generator, seeded by the scheduler from
  /// (config seed, stage sequence number, task index). Task bodies needing
  /// randomness must use this — never a shared generator — so results do not
  /// depend on which host thread ran the body first.
  Random& rng() {
    if (!rng_) rng_.emplace(rng_seed_);
    return *rng_;
  }

  TaskWork& work() { return work_; }
  const TaskWork& work() const { return work_; }

  bool HasMissingInput() const { return !missing_inputs_.empty(); }
  const std::vector<std::pair<int, int>>& missing_inputs() const {
    return missing_inputs_;
  }

  // -- Block cache (read-only view + task-local overlay) --------------------

  /// Looks up a cached partition: this task's own puts first, then the
  /// stage-start snapshot of the shared cache. Charges the read (memory if
  /// the task lands on the caching node, network otherwise; with
  /// `free_reads`, local reads are free because the consumer charges its own
  /// finer-grained cost). Returns nullptr if absent.
  BlockData CacheGet(int rdd_id, int partition, bool free_reads) {
    auto it = overlay_.find({rdd_id, partition});
    if (it != overlay_.end()) {
      // Own put: the block will live on this task's node, so the re-read is
      // local by definition.
      if (!free_reads) work_.mem_read_bytes += it->second.second;
      cache_log_.push_back(CacheOp{false, rdd_id, partition, nullptr, 0, -1});
      CacheCounters& c = cache_counters_[rdd_id];
      c.hit_blocks += 1;
      c.hit_bytes += it->second.second;
      return it->second.first;
    }
    const CachedBlock* cb = block_manager_->Peek(rdd_id, partition);
    if (cb == nullptr) return nullptr;
    DeferredCharge charge;
    charge.kind = free_reads ? DeferredCharge::Kind::kNetIfRemote
                             : DeferredCharge::Kind::kMemOrNet;
    charge.bytes = cb->bytes;
    charge.home = cb->node;
    deferred_charges_.push_back(std::move(charge));
    cache_log_.push_back(CacheOp{false, rdd_id, partition, nullptr, 0, -1});
    CacheCounters& c = cache_counters_[rdd_id];
    c.hit_blocks += 1;
    c.hit_bytes += cb->bytes;
    return cb->data;
  }

  /// Records that a cached RDD's partition was absent and had to be
  /// recomputed (`bytes` = the recomputed block's size). Called by
  /// RddBase::GetOrComputeErased.
  void RecordCacheMiss(int rdd_id, uint64_t bytes) {
    CacheCounters& c = cache_counters_[rdd_id];
    c.miss_blocks += 1;
    c.miss_bytes += bytes;
  }

  /// Records a block for caching. Visible to this task immediately; becomes
  /// visible to others only if the task commits (the scheduler replays the
  /// log). Oversized blocks are dropped, matching BlockManager::Put.
  void CachePut(int rdd_id, int partition, BlockData data, uint64_t bytes) {
    if (!block_manager_->Fits(bytes)) return;
    overlay_[{rdd_id, partition}] = {data, bytes};
    cache_log_.push_back(
        CacheOp{true, rdd_id, partition, std::move(data), bytes, -1});
  }

  // -- Operator working-set memory ------------------------------------------
  //
  // Task bodies arbitrate their hash tables and sort buffers against a
  // per-task budget latched by the scheduler at stage start (frozen state —
  // shuffle commits may move the node ledgers mid-stage, so bodies must not
  // read the MemoryManager live). Decisions are logged as MemOps; the
  // scheduler replays the committed attempt's log in commit order.

  /// The working-set budget (bytes) this task may claim. Defaults to
  /// unlimited for directly constructed contexts (unit tests).
  uint64_t mem_budget() const { return mem_budget_; }
  uint64_t mem_reserved() const { return mem_reserved_; }

  /// Claims `bytes` of working-set memory. Returns false (and logs a denied
  /// reservation) when the budget has no room — the operator must degrade.
  bool ReserveWorkingSet(uint64_t bytes) {
    bool granted = bytes <= mem_budget_ - mem_reserved_;
    mem_log_.push_back(MemOp{MemOp::Kind::kReserve, bytes, granted, 0});
    if (granted) mem_reserved_ += bytes;
    return granted;
  }

  /// Extends an existing reservation (e.g. the probe side of a join joining
  /// an already-reserved build table).
  bool GrowWorkingSet(uint64_t bytes) {
    bool granted = bytes <= mem_budget_ - mem_reserved_;
    mem_log_.push_back(MemOp{MemOp::Kind::kGrow, bytes, granted, 0});
    if (granted) mem_reserved_ += bytes;
    return granted;
  }

  /// Returns working-set memory; clamped to what is actually reserved.
  void ReleaseWorkingSet(uint64_t bytes) {
    bytes = std::min(bytes, mem_reserved_);
    if (bytes == 0) return;
    mem_reserved_ -= bytes;
    mem_log_.push_back(MemOp{MemOp::Kind::kRelease, bytes, true, 0});
  }

  /// Releases everything this task still holds; operators call this when
  /// their working structures die (tasks pipeline operators sequentially, so
  /// at any instant the reservation belongs to the innermost operator).
  void ReleaseAllWorkingSet() { ReleaseWorkingSet(mem_reserved_); }

  /// Reserve a hash-table working set, or degrade to the external grace-hash
  /// algorithm: partition the table into budget-sized runs on simulated
  /// local disk, then re-read and merge them partition by partition. Charges
  /// the spill I/O plus a rebuild pass over `rebuild_records` entries.
  /// Returns the number of spill partitions (0 = fit in memory).
  uint32_t ReserveOrSpillHash(uint64_t bytes, uint64_t rebuild_records) {
    if (ReserveWorkingSet(bytes)) return 0;
    return SpillWorkingSet(bytes, rebuild_records, /*sort_merge=*/false);
  }

  /// Grow variant of ReserveOrSpillHash (second input of a two-sided build).
  uint32_t GrowOrSpillHash(uint64_t bytes, uint64_t rebuild_records) {
    if (GrowWorkingSet(bytes)) return 0;
    return SpillWorkingSet(bytes, rebuild_records, /*sort_merge=*/false);
  }

  /// Reserve a sort buffer, or degrade to the external sort-merge path:
  /// sort budget-sized runs, spill each, then k-way merge — charging run
  /// I/O, one seek per run, and a merge pass over `merge_records` rows.
  /// Returns the number of runs (0 = fit in memory).
  uint32_t ReserveOrSpillSort(uint64_t bytes, uint64_t merge_records) {
    if (ReserveWorkingSet(bytes)) return 0;
    return SpillWorkingSet(bytes, merge_records, /*sort_merge=*/true);
  }

  uint64_t spill_bytes() const { return spill_bytes_; }
  uint32_t spill_partitions() const { return spill_partitions_; }

  // -- Shuffle fetch --------------------------------------------------------

  /// Fetches the given fine-grained buckets of every map output of a
  /// shuffle, charging transfer costs (memory/disk/network according to the
  /// engine profile and output locality; locality-dependent parts are
  /// deferred). Missing map outputs are recorded in missing_inputs().
  std::vector<BlockData> FetchShuffleBuckets(int shuffle_id,
                                             const std::vector<int>& buckets,
                                             double* effective_records = nullptr) {
    std::vector<BlockData> out;
    int num_maps = shuffle_manager_->NumMapPartitions(shuffle_id);
    for (int m = 0; m < num_maps; ++m) {
      const MapOutput* mo = shuffle_manager_->GetMapOutput(shuffle_id, m);
      // nullptr covers both never-computed and lost-to-failure outputs
      // (GetMapOutput's contract); either way the scheduler must recompute.
      if (mo == nullptr) {
        missing_inputs_.emplace_back(shuffle_id, m);
        continue;
      }
      uint64_t bytes = 0;
      for (int b : buckets) {
        const auto bi = static_cast<size_t>(b);
        if (mo->buckets[bi] != nullptr && mo->bucket_records[bi] > 0) {
          out.push_back(mo->buckets[bi]);
        }
        bytes += mo->bucket_bytes[bi];
        if (effective_records != nullptr) {
          double cost_scale = mo->bucket_cost_scale.empty()
                                  ? 1.0
                                  : mo->bucket_cost_scale[bi];
          *effective_records +=
              static_cast<double>(mo->bucket_records[bi]) * cost_scale;
        }
      }
      if (bytes == 0) continue;
      // Per-output serving mode: §5's memory-based-shuffle knob resolved at
      // map launch (globally true for the Hadoop profile, per-node true when
      // the map node's memory budget had no room for the buckets).
      if (mo->on_disk) {
        // The serving side reads its spilled map output from disk (one seek
        // per map output consulted), then ships it if remote.
        work_.disk_read_bytes += bytes;
        work_.disk_seeks += 1;
        deferred_charges_.push_back(DeferredCharge{
            DeferredCharge::Kind::kNetIfRemote, bytes, mo->node, {}});
      } else {
        deferred_charges_.push_back(DeferredCharge{
            DeferredCharge::Kind::kMemOrNet, bytes, mo->node, {}});
      }
    }
    return out;
  }

  // -- Broadcasts -----------------------------------------------------------

  /// Fetches a broadcast value. The one-time per-node transfer cannot be
  /// charged here (the node is unknown and the paid-set is shared state);
  /// the fetch is recorded and the scheduler charges it at launch.
  BlockData FetchBroadcast(int id) {
    broadcast_fetches_.push_back(id);
    return broadcasts_->data(id);
  }

  // -- DFS locality ---------------------------------------------------------

  /// Charges `bytes` as a network read unless the task lands on one of
  /// `replicas` (resolved at launch).
  void ChargeNetUnlessLocal(const std::vector<int>& replicas, uint64_t bytes) {
    deferred_charges_.push_back(DeferredCharge{
        DeferredCharge::Kind::kNetIfNoReplica, bytes, -1, replicas});
  }

  // -- Scheduler take-out ---------------------------------------------------

  std::vector<DeferredCharge> TakeDeferredCharges() {
    return std::move(deferred_charges_);
  }
  std::vector<int> TakeBroadcastFetches() {
    return std::move(broadcast_fetches_);
  }
  std::vector<CacheOp> TakeCacheLog() { return std::move(cache_log_); }
  std::map<int, CacheCounters> TakeCacheCounters() {
    return std::move(cache_counters_);
  }
  std::vector<MemOp> TakeMemLog() { return std::move(mem_log_); }

 private:
  /// Shared degradation path: charge the external-algorithm I/O for a
  /// `bytes`-sized working set that failed to reserve. Both shapes write the
  /// whole working set to local disk and read it back once; grace hash pays
  /// a rebuild over the spilled entries, external sort a merge pass.
  uint32_t SpillWorkingSet(uint64_t bytes, uint64_t records, bool sort_merge) {
    // Size spill runs by the task budget, not just the instantaneous
    // headroom: when an earlier structure already pinned the whole budget,
    // headroom approaches zero and per-headroom runs would degenerate to one
    // partition (and one charged seek) per byte. Real grace-hash/external
    // sort re-uses the operator's memory between runs, so a quarter-budget
    // floor keeps the run count proportional to bytes/budget.
    uint64_t headroom = mem_budget_ > mem_reserved_ ? mem_budget_ - mem_reserved_ : 0;
    uint64_t slice = std::max<uint64_t>(std::max(headroom, mem_budget_ / 4), 1);
    uint64_t parts64 = (bytes + slice - 1) / slice;
    uint32_t parts = static_cast<uint32_t>(
        std::min<uint64_t>(std::max<uint64_t>(parts64, 2), 1u << 20));
    work_.ser_bytes += bytes;
    work_.disk_write_bytes += bytes;
    work_.disk_read_bytes += bytes;
    work_.binary_deser_bytes += bytes;
    work_.disk_seeks += parts;
    if (sort_merge) {
      work_.rows_processed += records;
    } else {
      work_.hash_records += records;
    }
    spill_bytes_ += bytes;
    spill_partitions_ += parts;
    mem_log_.push_back(MemOp{MemOp::Kind::kSpill, bytes, false, parts});
    // One in-memory partition/run stays resident at a time (the operator's
    // ReleaseAll returns it); it can only occupy the headroom that is
    // actually left, even when the runs themselves are sized larger.
    uint64_t resident = std::min(bytes, headroom);
    if (resident > 0) GrowWorkingSet(resident);
    return parts;
  }
  int partition_;
  const EngineProfile* profile_;
  const BlockManager* block_manager_;
  const ShuffleManager* shuffle_manager_;
  const BroadcastRegistry* broadcasts_;
  double virtual_scale_;
  uint64_t rng_seed_;
  uint64_t mem_budget_;
  uint64_t mem_reserved_ = 0;
  uint64_t spill_bytes_ = 0;
  uint32_t spill_partitions_ = 0;
  std::vector<MemOp> mem_log_;
  std::optional<Random> rng_;
  TaskWork work_;
  std::vector<std::pair<int, int>> missing_inputs_;
  std::vector<DeferredCharge> deferred_charges_;
  std::vector<int> broadcast_fetches_;
  std::vector<CacheOp> cache_log_;
  std::map<int, CacheCounters> cache_counters_;  // per rdd id
  std::map<BlockKey, std::pair<BlockData, uint64_t>> overlay_;
};

}  // namespace shark

#endif  // SHARK_RDD_TASK_CONTEXT_H_
