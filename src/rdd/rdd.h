#ifndef SHARK_RDD_RDD_H_
#define SHARK_RDD_RDD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "rdd/shuffle.h"
#include "rdd/task_context.h"
#include "sim/dfs.h"

namespace shark {

class ClusterContext;
class ShuffleDependency;

// ---------------------------------------------------------------------------
// Size estimation customization point (cache accounting / shuffle sizes).
// ---------------------------------------------------------------------------

inline uint64_t ApproxSizeOf(const std::string& s) { return 24 + s.size(); }

template <typename T>
uint64_t ApproxSizeOf(const T&) {
  static_assert(std::is_trivially_copyable_v<T>,
                "provide an ApproxSizeOf overload for non-trivial types");
  return sizeof(T);
}

// Forward declarations so that pair-of-vector / vector-of-pair compositions
// resolve through ordinary lookup at instantiation time.
template <typename A, typename B>
uint64_t ApproxSizeOf(const std::pair<A, B>& p);
template <typename T>
uint64_t ApproxSizeOf(const std::vector<T>& v);

template <typename A, typename B>
uint64_t ApproxSizeOf(const std::pair<A, B>& p) {
  return ApproxSizeOf(p.first) + ApproxSizeOf(p.second);
}

template <typename T>
uint64_t ApproxSizeOf(const std::vector<T>& v) {
  uint64_t total = 24;
  for (const T& x : v) total += ApproxSizeOf(x);
  return total;
}

template <typename T>
uint64_t ApproxSizeOfRange(const std::vector<T>& v) {
  uint64_t total = 0;
  for (const T& x : v) total += ApproxSizeOf(x);
  return total;
}

// ---------------------------------------------------------------------------
// Key hashing customization point (shuffle partitioning, hash joins). Must be
// deterministic across runs so lineage recomputation reproduces identical
// bucket assignment.
// ---------------------------------------------------------------------------

inline uint64_t KeyHash(int64_t k) { return HashInt64(k); }
inline uint64_t KeyHash(int32_t k) { return HashInt64(k); }
inline uint64_t KeyHash(uint64_t k) { return HashInt64(static_cast<int64_t>(k)); }
inline uint64_t KeyHash(double k) { return HashDouble(k); }
inline uint64_t KeyHash(const std::string& k) { return HashBytes(k); }

template <typename A, typename B>
uint64_t KeyHash(const std::pair<A, B>& p) {
  return HashCombine(KeyHash(p.first), KeyHash(p.second));
}

/// std::unordered_map-compatible hasher built on KeyHash.
template <typename K>
struct KeyHasher {
  size_t operator()(const K& k) const { return static_cast<size_t>(KeyHash(k)); }
};

// ---------------------------------------------------------------------------
// Dependencies
// ---------------------------------------------------------------------------

class RddBase;

/// Type-erased map-side description of a shuffle: how to split a parent
/// block into fine-grained reduce buckets, and how to measure/statistic the
/// buckets. Registered with the ShuffleManager at construction; the id is
/// what reduce tasks fetch by and what PDE consults stats for.
class ShuffleDependency {
 public:
  virtual ~ShuffleDependency() = default;

  int shuffle_id() const { return shuffle_id_; }
  int num_buckets() const { return num_buckets_; }
  const std::shared_ptr<RddBase>& parent() const { return parent_; }

  /// Splits one parent block into `num_buckets` buckets, charging map-side
  /// costs (combine hashing, optional sort, shuffle write). Fills the
  /// MapOutput's buckets plus their byte/record metadata; byte sizes of
  /// cardinality-bounded (combined) outputs are pre-adjusted with the
  /// distinct-growth estimator so that the cost model's uniform virtual
  /// scaling yields faithful shuffle volumes.
  virtual MapOutput PartitionBlock(const BlockData& block,
                                   TaskContext* tctx) const = 0;

  /// Folds the bucket's keys into the PDE statistics sketches.
  virtual void CollectKeyStats(const BlockData& bucket, HeavyHitters* hh,
                               ApproxHistogram* hist) const = 0;

 protected:
  ShuffleDependency(std::shared_ptr<RddBase> parent, int num_buckets);

  std::shared_ptr<RddBase> parent_;
  int num_buckets_;
  int shuffle_id_ = -1;
};

/// An edge in the lineage graph: either narrow (parent partition feeds one
/// child partition, computed in the same task) or a shuffle.
struct Dependency {
  std::shared_ptr<RddBase> narrow_parent;          // set for narrow deps
  std::shared_ptr<ShuffleDependency> shuffle;      // set for shuffle deps
};

// ---------------------------------------------------------------------------
// RddBase
// ---------------------------------------------------------------------------

/// Type-erased base of all RDDs: identity, lineage edges, cache flag, and
/// partition-level compute. Instances are immutable datasets created only
/// through deterministic operators (§2.2), which is what makes lineage-based
/// recovery sound.
class RddBase : public std::enable_shared_from_this<RddBase> {
 public:
  RddBase(ClusterContext* ctx, std::string label);
  virtual ~RddBase();

  RddBase(const RddBase&) = delete;
  RddBase& operator=(const RddBase&) = delete;

  int id() const { return id_; }
  ClusterContext* context() const { return ctx_; }
  const std::string& label() const { return label_; }

  virtual int num_partitions() const = 0;
  const std::vector<Dependency>& dependencies() const { return deps_; }

  /// Computes partition `p` from parents (never consults the cache for this
  /// RDD itself; GetOrCompute does). Returned block is a
  /// shared_ptr<const std::vector<T>> for the concrete element type.
  virtual BlockData ComputeErased(int p, TaskContext* tctx) const = 0;

  /// Approximate in-memory bytes of a block produced by this RDD.
  virtual uint64_t BlockBytes(const BlockData& block) const = 0;
  virtual uint64_t BlockRows(const BlockData& block) const = 0;

  /// Cache-aware compute: returns the cached block (charging a memory or
  /// network read) or computes from lineage, inserting into the cache if
  /// this RDD is marked cached and the engine has a memory store.
  BlockData GetOrComputeErased(int p, TaskContext* tctx) const;

  /// Marks this RDD for in-memory caching (Spark's persist(MEMORY_ONLY)).
  /// Recorded in the owning job's debris ledger (when one is current) so a
  /// failing query can drop the cache entries it created.
  void Cache();

  /// Disables the generic byte charge on cached reads; used when consumers
  /// charge their own (finer-grained) read costs, e.g. the columnar
  /// memstore, where a scan only pays for the columns it decodes.
  void set_free_cache_reads(bool free_reads) { free_cache_reads_ = free_reads; }
  /// Unmarks caching and drops cached blocks.
  void Uncache();
  bool cached() const { return cached_; }

  /// Locality preference: the cached location if cached, otherwise an
  /// explicit placement hint if set, otherwise the subclass hint (e.g. DFS
  /// replica nodes, or the parent's preference for narrow dependencies).
  std::vector<int> PreferredNodes(int p) const;

  /// Explicit placement hint (e.g. align a co-partitioned table's load tasks
  /// with the partner table's cached partitions, §3.4).
  void set_preferred_hint(std::function<std::vector<int>(int)> hint) {
    preferred_hint_ = std::move(hint);
  }

 protected:
  virtual std::vector<int> ComputePreferredNodes(int p) const;

  // Non-template bridges into ClusterContext so that template subclasses do
  // not need the ClusterContext definition (implemented in context.cc).
  BlockManager* block_manager_ptr() const;
  ShuffleManager* shuffle_manager_ptr() const;

  std::vector<Dependency> deps_;

 private:
  ClusterContext* ctx_;
  int id_;
  std::string label_;
  bool cached_ = false;
  bool free_cache_reads_ = false;
  std::function<std::vector<int>(int)> preferred_hint_;
};

// ---------------------------------------------------------------------------
// TypedRdd<T>
// ---------------------------------------------------------------------------

template <typename T>
class TypedRdd;

template <typename T>
using RddPtr = std::shared_ptr<TypedRdd<T>>;

/// Statically-typed RDD of elements T. Blocks are std::vector<T>.
template <typename T>
class TypedRdd : public RddBase {
 public:
  using Element = T;
  using Block = std::vector<T>;

  using RddBase::RddBase;

  /// Computes partition `p`. Implementations pull parent data via the
  /// parent's GetOrCompute so cached partitions short-circuit recomputation.
  virtual Block Compute(int p, TaskContext* tctx) const = 0;

  /// Hook for sources that can return an already-materialized block without
  /// copying (e.g. DFS blocks). Default materializes via Compute.
  virtual std::shared_ptr<const Block> ComputeShared(int p,
                                                     TaskContext* tctx) const {
    return std::make_shared<const Block>(Compute(p, tctx));
  }

  /// Typed view of RddBase::GetOrComputeErased.
  std::shared_ptr<const Block> GetOrCompute(int p, TaskContext* tctx) const {
    return std::static_pointer_cast<const Block>(GetOrComputeErased(p, tctx));
  }

  BlockData ComputeErased(int p, TaskContext* tctx) const final {
    return ComputeShared(p, tctx);
  }

  uint64_t BlockBytes(const BlockData& block) const final {
    return BlockBytes(std::static_pointer_cast<const Block>(block));
  }

  uint64_t BlockBytes(const std::shared_ptr<const Block>& block) const {
    return 24 + ApproxSizeOfRange(*block);
  }

  uint64_t BlockRows(const BlockData& block) const final {
    return std::static_pointer_cast<const Block>(block)->size();
  }

  RddPtr<T> self() {
    return std::static_pointer_cast<TypedRdd<T>>(this->shared_from_this());
  }

  // -- Functional transformations (declared below as free factories; these
  //    members are thin sugar). Definitions follow the concrete RDD types.
  template <typename F>
  auto Map(F f, std::string label = "map");
  template <typename F>
  RddPtr<T> Filter(F f, std::string label = "filter");
  template <typename F>
  auto FlatMap(F f, std::string label = "flatMap");
  template <typename F>
  auto MapPartitions(F f, std::string label = "mapPartitions");
};

// ---------------------------------------------------------------------------
// Narrow-dependency RDDs
// ---------------------------------------------------------------------------

/// Driver-side data split into fixed partitions (SparkContext.parallelize).
template <typename T>
class ParallelizeRdd final : public TypedRdd<T> {
 public:
  ParallelizeRdd(ClusterContext* ctx, const std::vector<T>& data,
                 int num_partitions, std::string label = "parallelize")
      : TypedRdd<T>(ctx, std::move(label)) {
    SHARK_CHECK(num_partitions > 0);
    partitions_.resize(static_cast<size_t>(num_partitions));
    for (size_t i = 0; i < data.size(); ++i) {
      partitions_[i * static_cast<size_t>(num_partitions) / data.size()]
          .push_back(data[i]);
    }
  }

  int num_partitions() const override {
    return static_cast<int>(partitions_.size());
  }

  typename TypedRdd<T>::Block Compute(int p, TaskContext* tctx) const override {
    // Shipped from the driver with the task; charge a network read.
    const auto& part = partitions_[static_cast<size_t>(p)];
    tctx->work().net_read_bytes += ApproxSizeOfRange(part);
    return part;
  }

 private:
  std::vector<std::vector<T>> partitions_;
};

/// Scan of a simulated DFS file whose blocks hold std::vector<T> payloads.
/// Charges local/remote disk reads plus format-dependent deserialization
/// (§3.2: schema-on-read text parsing is the dominant cost for Hive).
template <typename T>
class DfsRdd final : public TypedRdd<T> {
 public:
  DfsRdd(ClusterContext* ctx, const DfsFile* file, std::string label = "")
      : TypedRdd<T>(ctx, label.empty() ? "dfs:" + file->name : std::move(label)),
        file_(file) {
    SHARK_CHECK(!file->blocks.empty());
  }

  int num_partitions() const override {
    return static_cast<int>(file_->blocks.size());
  }

  const DfsFile* file() const { return file_; }

  typename TypedRdd<T>::Block Compute(int p, TaskContext* tctx) const override {
    return *ComputeShared(p, tctx);
  }

  std::shared_ptr<const typename TypedRdd<T>::Block> ComputeShared(
      int p, TaskContext* tctx) const override {
    const DfsBlock& block = file_->blocks[static_cast<size_t>(p)];
    tctx->work().disk_read_bytes += block.bytes;
    tctx->work().disk_seeks += 1;
    tctx->ChargeNetUnlessLocal(block.replicas, block.bytes);
    if (file_->format == DfsFormat::kText) {
      tctx->work().text_deser_bytes += block.bytes;
    } else {
      tctx->work().binary_deser_bytes += block.bytes;
    }
    return std::static_pointer_cast<const typename TypedRdd<T>::Block>(
        block.data);
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    return file_->blocks[static_cast<size_t>(p)].replicas;
  }

 private:
  const DfsFile* file_;
};

/// Element-wise map.
template <typename T, typename U>
class MapRdd final : public TypedRdd<U> {
 public:
  MapRdd(RddPtr<T> parent, std::function<U(const T&)> fn, std::string label)
      : TypedRdd<U>(parent->context(), std::move(label)),
        parent_(parent),
        fn_(std::move(fn)) {
    this->deps_.push_back(Dependency{parent, nullptr});
  }

  int num_partitions() const override { return parent_->num_partitions(); }

  typename TypedRdd<U>::Block Compute(int p, TaskContext* tctx) const override {
    auto in = parent_->GetOrCompute(p, tctx);
    typename TypedRdd<U>::Block out;
    out.reserve(in->size());
    for (const T& x : *in) out.push_back(fn_(x));
    tctx->work().rows_processed += in->size();
    return out;
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    return parent_->PreferredNodes(p);
  }

 private:
  RddPtr<T> parent_;
  std::function<U(const T&)> fn_;
};

/// Element-wise filter.
template <typename T>
class FilterRdd final : public TypedRdd<T> {
 public:
  FilterRdd(RddPtr<T> parent, std::function<bool(const T&)> pred,
            std::string label)
      : TypedRdd<T>(parent->context(), std::move(label)),
        parent_(parent),
        pred_(std::move(pred)) {
    this->deps_.push_back(Dependency{parent, nullptr});
  }

  int num_partitions() const override { return parent_->num_partitions(); }

  typename TypedRdd<T>::Block Compute(int p, TaskContext* tctx) const override {
    auto in = parent_->GetOrCompute(p, tctx);
    typename TypedRdd<T>::Block out;
    for (const T& x : *in) {
      if (pred_(x)) out.push_back(x);
    }
    tctx->work().rows_processed += in->size();
    return out;
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    return parent_->PreferredNodes(p);
  }

 private:
  RddPtr<T> parent_;
  std::function<bool(const T&)> pred_;
};

/// Element-to-many map.
template <typename T, typename U>
class FlatMapRdd final : public TypedRdd<U> {
 public:
  FlatMapRdd(RddPtr<T> parent, std::function<std::vector<U>(const T&)> fn,
             std::string label)
      : TypedRdd<U>(parent->context(), std::move(label)),
        parent_(parent),
        fn_(std::move(fn)) {
    this->deps_.push_back(Dependency{parent, nullptr});
  }

  int num_partitions() const override { return parent_->num_partitions(); }

  typename TypedRdd<U>::Block Compute(int p, TaskContext* tctx) const override {
    auto in = parent_->GetOrCompute(p, tctx);
    typename TypedRdd<U>::Block out;
    for (const T& x : *in) {
      std::vector<U> ys = fn_(x);
      for (U& y : ys) out.push_back(std::move(y));
    }
    tctx->work().rows_processed += in->size();
    return out;
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    return parent_->PreferredNodes(p);
  }

 private:
  RddPtr<T> parent_;
  std::function<std::vector<U>(const T&)> fn_;
};

/// Whole-partition map with access to the partition index and TaskContext;
/// the workhorse for SQL operators (partial aggregation, top-k, marshalling).
template <typename T, typename U>
class MapPartitionsRdd final : public TypedRdd<U> {
 public:
  using Fn = std::function<std::vector<U>(int partition, const std::vector<T>&,
                                          TaskContext*)>;

  MapPartitionsRdd(RddPtr<T> parent, Fn fn, std::string label)
      : TypedRdd<U>(parent->context(), std::move(label)),
        parent_(parent),
        fn_(std::move(fn)) {
    this->deps_.push_back(Dependency{parent, nullptr});
  }

  int num_partitions() const override { return parent_->num_partitions(); }

  typename TypedRdd<U>::Block Compute(int p, TaskContext* tctx) const override {
    auto in = parent_->GetOrCompute(p, tctx);
    return fn_(p, *in, tctx);
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    return parent_->PreferredNodes(p);
  }

 private:
  RddPtr<T> parent_;
  Fn fn_;
};

/// Concatenation of two RDDs of the same type.
template <typename T>
class UnionRdd final : public TypedRdd<T> {
 public:
  UnionRdd(RddPtr<T> left, RddPtr<T> right)
      : TypedRdd<T>(left->context(), "union"), left_(left), right_(right) {
    this->deps_.push_back(Dependency{left, nullptr});
    this->deps_.push_back(Dependency{right, nullptr});
  }

  int num_partitions() const override {
    return left_->num_partitions() + right_->num_partitions();
  }

  typename TypedRdd<T>::Block Compute(int p, TaskContext* tctx) const override {
    if (p < left_->num_partitions()) return *left_->GetOrCompute(p, tctx);
    return *right_->GetOrCompute(p - left_->num_partitions(), tctx);
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    if (p < left_->num_partitions()) return left_->PreferredNodes(p);
    return right_->PreferredNodes(p - left_->num_partitions());
  }

 private:
  RddPtr<T> left_;
  RddPtr<T> right_;
};

/// Narrow repartitioning onto a subset of parent partitions — used by map
/// pruning (§3.5): partitions whose statistics cannot satisfy the predicate
/// are never scanned, because no task is launched for them.
template <typename T>
class PartitionSubsetRdd final : public TypedRdd<T> {
 public:
  PartitionSubsetRdd(RddPtr<T> parent, std::vector<int> selected,
                     std::string label = "pruned")
      : TypedRdd<T>(parent->context(), std::move(label)),
        parent_(parent),
        selected_(std::move(selected)) {
    this->deps_.push_back(Dependency{parent, nullptr});
  }

  int num_partitions() const override {
    return static_cast<int>(selected_.size());
  }

  typename TypedRdd<T>::Block Compute(int p, TaskContext* tctx) const override {
    return *parent_->GetOrCompute(selected_[static_cast<size_t>(p)], tctx);
  }

  std::shared_ptr<const typename TypedRdd<T>::Block> ComputeShared(
      int p, TaskContext* tctx) const override {
    return parent_->GetOrCompute(selected_[static_cast<size_t>(p)], tctx);
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    return parent_->PreferredNodes(selected_[static_cast<size_t>(p)]);
  }

 private:
  RddPtr<T> parent_;
  std::vector<int> selected_;
};

// ---------------------------------------------------------------------------
// Factory helpers + member sugar
// ---------------------------------------------------------------------------

template <typename T>
template <typename F>
auto TypedRdd<T>::Map(F f, std::string label) {
  using U = std::invoke_result_t<F, const T&>;
  return std::make_shared<MapRdd<T, U>>(self(), std::function<U(const T&)>(f),
                                        std::move(label));
}

template <typename T>
template <typename F>
RddPtr<T> TypedRdd<T>::Filter(F f, std::string label) {
  return std::make_shared<FilterRdd<T>>(
      self(), std::function<bool(const T&)>(f), std::move(label));
}

template <typename T>
template <typename F>
auto TypedRdd<T>::FlatMap(F f, std::string label) {
  using Vec = std::invoke_result_t<F, const T&>;
  using U = typename Vec::value_type;
  return std::make_shared<FlatMapRdd<T, U>>(
      self(), std::function<std::vector<U>(const T&)>(f), std::move(label));
}

template <typename T>
template <typename F>
auto TypedRdd<T>::MapPartitions(F f, std::string label) {
  using Vec = std::invoke_result_t<F, int, const std::vector<T>&, TaskContext*>;
  using U = typename Vec::value_type;
  return std::make_shared<MapPartitionsRdd<T, U>>(
      self(), typename MapPartitionsRdd<T, U>::Fn(f), std::move(label));
}

}  // namespace shark

#endif  // SHARK_RDD_RDD_H_
