#ifndef SHARK_RDD_JOB_MANAGER_H_
#define SHARK_RDD_JOB_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "rdd/scheduler.h"

namespace shark {

class ClusterContext;

/// One query/job submitted to the JobManager.
struct JobSpec {
  std::string label;
  /// Stable query identifier for observability: stamped onto the job's
  /// TraceCollector (so QueryProfile / chrome traces carry it) and echoed in
  /// the JobOutcome. Empty = unidentified (metrics still collected).
  std::string query_id;
  /// Owning session name for per-session SLO attribution
  /// (ClusterMetrics::OnQueryComplete); empty = server-wide series only.
  std::string session;
  /// Virtual arrival time (batch mode). Earlier arrivals are considered for
  /// admission first; ties resolve in submission order. Streaming mode
  /// ignores this and stamps the virtual clock at dequeue.
  double arrival_vtime = 0.0;
  /// Inter-query fair-share weight (see JobState::weight).
  double weight = 1.0;
  /// Declared aggregate working-set demand, gated against
  /// MemoryManager::AdmissionHeadroomBytes(); 0 bypasses the memory gate.
  uint64_t mem_demand_bytes = 0;
  /// The job body. Runs on a dedicated job thread under the cooperative
  /// baton — exactly one of {driver, job threads} executes at any instant —
  /// so it may freely use ClusterContext / SqlSession APIs.
  std::function<Status()> body;
};

/// Completion record of one job.
struct JobOutcome {
  std::string label;
  std::string query_id;  // echoed from the spec
  std::string session;   // echoed from the spec
  Status status;
  bool queued = false;          // deferred by admission control
  double arrival_vtime = 0.0;
  double admit_vtime = 0.0;
  double finish_vtime = 0.0;
  /// Wall-clock submit-to-completion seconds; < 0 in batch mode (never
  /// measured there, keeping batch outcomes a pure virtual-time function).
  double host_seconds = -1.0;
  double queue_delay() const { return admit_vtime - arrival_vtime; }
  double latency() const { return finish_vtime - arrival_vtime; }
};

/// Multiplexes N jobs onto the scheduler's shared event loop.
///
/// Concurrency model: every job body runs on its own host thread, but a
/// baton (one mutex + condvar) guarantees that exactly one thread — the
/// driver or a single job thread — touches engine state at any instant.
/// Job threads surrender the baton by parking inside ExecuteTaskSet; the
/// driver's event loop resumes them when their stage finalizes. Every
/// handoff passes through the mutex, so execution is sequentially
/// consistent, TSan-clean, and (in batch mode) a pure function of the
/// virtual-time event order — bit-identical across host_threads.
///
/// Admission control: an arriving job is admitted when its declared memory
/// demand fits the cluster-wide headroom (and an optional concurrency cap
/// is not hit); otherwise it queues FIFO with a metrics-visible reason.
/// The queue head is force-admitted whenever nothing is running, so
/// admission can never deadlock. Admitted demand is reserved with the
/// MemoryManager and released when the job finishes, success or failure.
class JobManager {
 public:
  struct Options {
    /// Maximum jobs running concurrently; 0 = unlimited (memory gate only).
    int max_concurrent = 0;
    /// Feed every completion into the query SLO histograms
    /// (ClusterMetrics::OnQueryComplete). Purely additive virtual-time
    /// observables in batch mode (wall-clock latencies are recorded only in
    /// streaming mode), so enabling it does not perturb virtual times.
    bool collect_query_metrics = true;
  };

  explicit JobManager(ClusterContext* ctx) : JobManager(ctx, Options()) {}
  JobManager(ClusterContext* ctx, Options options);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Batch mode: runs every spec to completion on this thread's event-loop
  /// drive and returns outcomes in spec order. Deterministic: results are a
  /// function of the specs and the context seed only. Arrivals later than
  /// the current virtual clock are honored by advancing the clock when the
  /// cluster goes idle (open-loop arrival process).
  std::vector<JobOutcome> RunJobs(std::vector<JobSpec> specs);

  /// Streaming mode (the SQL server): a background driver thread owns the
  /// event loop; Submit may be called from any thread and returns a ticket;
  /// Await blocks until that job completes. Virtual arrival time is the
  /// clock at dequeue. Not deterministic across runs — submission order is
  /// wall-clock — but engine state is still baton-serialized.
  void Start();
  uint64_t Submit(JobSpec spec);
  JobOutcome Await(uint64_t ticket);
  /// Drains everything already submitted, then stops the driver thread.
  void Stop();
  bool started() const { return started_; }

  /// Runs `fn` on the streaming driver thread at a baton-safe point (no job
  /// thread is executing) and blocks until it returns — the safe way for
  /// observability threads (HTTP /metrics, STATS) to read engine state like
  /// the MetricsRegistry while queries run. Outside streaming mode `fn`
  /// runs inline on the caller. Must not race with Stop().
  void Inspect(const std::function<void()>& fn);

 private:
  struct JobRun;

  // Baton protocol.
  void ResumeUntilBlocked(JobRun* run);  // driver -> job thread handoff
  void JobThreadMain(JobRun* run);
  void ParkHook(JobState* job);    // scheduler hook, job thread
  void ResumeHook(JobState* job);  // scheduler hook, driver thread

  // Admission (driver thread).
  bool CanAdmit(const JobRun& run, size_t running_count,
                std::string* deny_reason) const;
  void Admit(JobRun* run);
  JobOutcome Reap(JobRun* run);

  /// Shared driver loop body: admits from `queue`/`arrivals`, reaps
  /// `running`, returns true if it made progress without driving the
  /// scheduler (caller re-enters immediately).
  bool AdmitAndReap(std::deque<JobRun*>* queue, std::deque<JobRun*>* arrivals,
                    std::vector<JobRun*>* running,
                    const std::function<void(JobRun*)>& on_done);

  void StreamLoop();

  ClusterContext* ctx_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<JobState*, JobRun*> by_state_;  // guarded by mu_
  int next_job_seq_ = 1;

  // Streaming state.
  bool started_ = false;
  bool stop_requested_ = false;
  uint64_t next_ticket_ = 1;
  std::deque<std::unique_ptr<JobRun>> inbox_;       // guarded by mu_
  std::map<uint64_t, JobOutcome> done_outcomes_;    // guarded by mu_
  struct InspectReq {
    const std::function<void()>* fn;
    bool done = false;  // guarded by mu_
  };
  std::deque<InspectReq*> inspects_;                // guarded by mu_
  std::thread driver_;
};

}  // namespace shark

#endif  // SHARK_RDD_JOB_MANAGER_H_
