#include "rdd/context.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "mem/memory_manager.h"

namespace shark {

// ---------------------------------------------------------------------------
// RddBase (non-template parts live here so rdd.h can keep ClusterContext
// incomplete).
// ---------------------------------------------------------------------------

RddBase::RddBase(ClusterContext* ctx, std::string label)
    : ctx_(ctx), id_(ctx->NextRddId()), label_(std::move(label)) {}

RddBase::~RddBase() = default;

void RddBase::Cache() {
  cached_ = true;
  // Per-job debris ledger: a failing query drops the cache entries it
  // created so concurrent sessions never inherit its leftovers.
  if (JobState* job = CurrentJobState()) {
    job->owned_cache_rdd_ids.push_back(id_);
  }
}

void RddBase::Uncache() {
  cached_ = false;
  // The block cache is shared engine state; other jobs may have epochs in
  // flight that read it.
  ctx_->scheduler().QuiesceForSharedStateMutation();
  ctx_->block_manager().DropRdd(id_);
}

BlockManager* RddBase::block_manager_ptr() const {
  return &ctx_->block_manager();
}

ShuffleManager* RddBase::shuffle_manager_ptr() const {
  return &ctx_->shuffle_manager();
}

std::vector<int> RddBase::PreferredNodes(int p) const {
  if (cached_) {
    int loc = ctx_->block_manager().Location(id_, p);
    if (loc >= 0) return {loc};
  }
  if (preferred_hint_) {
    std::vector<int> hint = preferred_hint_(p);
    if (!hint.empty()) return hint;
  }
  return ComputePreferredNodes(p);
}

BlockData RddBase::GetOrComputeErased(int p, TaskContext* tctx) const {
  if (cached_) {
    if (BlockData hit = tctx->CacheGet(id_, p, free_cache_reads_)) return hit;
  }
  BlockData block = ComputeErased(p, tctx);
  if (cached_) {
    uint64_t bytes = BlockBytes(block);
    tctx->RecordCacheMiss(id_, bytes);
    if (!tctx->HasMissingInput() && tctx->profile().memory_store) {
      tctx->CachePut(id_, p, block, bytes);
    }
  }
  return block;
}

std::vector<int> RddBase::ComputePreferredNodes(int p) const {
  // Default: follow the first narrow parent (pipelined in the same task).
  for (const Dependency& d : deps_) {
    if (d.narrow_parent != nullptr) return d.narrow_parent->PreferredNodes(p);
  }
  return {};
}

// ---------------------------------------------------------------------------
// ShuffleDependency registration
// ---------------------------------------------------------------------------

ShuffleDependency::ShuffleDependency(std::shared_ptr<RddBase> parent,
                                     int num_buckets)
    : parent_(std::move(parent)), num_buckets_(num_buckets) {
  SHARK_CHECK(num_buckets > 0);
  shuffle_id_ = parent_->context()->shuffle_manager().RegisterShuffle(
      parent_->num_partitions(), num_buckets);
  if (JobState* job = CurrentJobState()) {
    job->owned_shuffle_ids.push_back(shuffle_id_);
  }
}

// ---------------------------------------------------------------------------
// ClusterContext
// ---------------------------------------------------------------------------

ClusterContext::ClusterContext(ClusterConfig config,
                               std::shared_ptr<Dfs> shared_dfs)
    : config_(config) {
  if (shared_dfs != nullptr) {
    dfs_ = std::move(shared_dfs);
  } else {
    dfs_ = std::make_shared<Dfs>(config_.num_nodes, config_.profile.dfs_replication,
                                 config_.seed);
  }
  cluster_ = std::make_unique<Cluster>(config_.num_nodes,
                                       config_.hardware.cores_per_node);
  cost_model_ = std::make_unique<CostModel>(config_.hardware);
  // Cached block sizes are tracked in real bytes while node capacity is a
  // virtual quantity; dividing capacity by the data scale makes a scaled-down
  // dataset occupy the same *fraction* of memory it would at full size.
  uint64_t real_capacity = static_cast<uint64_t>(
      static_cast<double>(config_.hardware.mem_bytes_per_node) /
      std::max(1.0, config_.virtual_data_scale));
  block_manager_ =
      std::make_unique<BlockManager>(config_.num_nodes, real_capacity);
  // The memory manager arbitrates the same scaled budget across the block
  // cache (observed through UsedBytes), shuffle buffers and task working
  // sets; the cache stays the senior consumer with its own LRU enforcement.
  memory_manager_ = std::make_unique<MemoryManager>(
      config_.num_nodes, real_capacity, config_.hardware.cores_per_node);
  memory_manager_->set_cache_usage_fn(
      [bm = block_manager_.get()](int node) { return bm->UsedBytes(node); });
  shuffle_manager_ = std::make_unique<ShuffleManager>();
  shuffle_manager_->set_memory_manager(memory_manager_.get());
  metrics_ = std::make_unique<ClusterMetrics>(config_.num_nodes,
                                              config_.hardware);
  metrics_->set_cache_bytes_fn(
      [bm = block_manager_.get()] { return bm->TotalUsedBytes(); });
  metrics_->set_cache_bytes_on_node_fn(
      [bm = block_manager_.get()](int node) { return bm->UsedBytes(node); });
  metrics_->set_shuffle_bytes_fn(
      [mm = memory_manager_.get()] { return mm->total_shuffle_bytes(); });
  metrics_->set_shuffle_bytes_on_node_fn(
      [mm = memory_manager_.get()](int node) {
        return mm->shuffle_bytes(node);
      });
  block_manager_->set_eviction_hook(
      [m = metrics_.get()](uint64_t blocks, uint64_t bytes) {
        m->OnCacheEviction(blocks, bytes);
      });
  scheduler_ = std::make_unique<DagScheduler>(this);
  SHARK_LOG(kInfo) << "cluster up: " << config_.num_nodes << " nodes x "
                   << config_.hardware.cores_per_node << " cores, "
                   << real_capacity << " B cache/node (scale "
                   << config_.virtual_data_scale << "), host_threads="
                   << config_.host_threads;
}

ClusterContext::~ClusterContext() = default;

void ClusterContext::ResetClock() {
  cluster_->Reset();
  now_ = 0.0;
  // The timeline cannot run backwards; cumulative counters survive.
  metrics_->OnClockReset();
}

int ClusterContext::effective_host_threads() const {
  int threads = config_.host_threads;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, threads);
}

ThreadPool* ClusterContext::thread_pool() {
  int effective = effective_host_threads();
  // The scheduler's main thread helps while it waits, so it counts as one of
  // the configured host threads.
  int workers = effective - 1;
  if (workers < 1) return nullptr;
  if (thread_pool_ == nullptr || thread_pool_->num_workers() != workers) {
    thread_pool_ = std::make_unique<ThreadPool>(workers);
  }
  return thread_pool_.get();
}

void ClusterContext::set_host_threads(int host_threads) {
  config_.host_threads = host_threads;
}

}  // namespace shark
