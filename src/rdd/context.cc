#include "rdd/context.h"

#include <algorithm>

#include "common/logging.h"

namespace shark {

// ---------------------------------------------------------------------------
// RddBase (non-template parts live here so rdd.h can keep ClusterContext
// incomplete).
// ---------------------------------------------------------------------------

RddBase::RddBase(ClusterContext* ctx, std::string label)
    : ctx_(ctx), id_(ctx->NextRddId()), label_(std::move(label)) {}

RddBase::~RddBase() = default;

void RddBase::Uncache() {
  cached_ = false;
  ctx_->block_manager().DropRdd(id_);
}

BlockManager* RddBase::block_manager_ptr() const {
  return &ctx_->block_manager();
}

ShuffleManager* RddBase::shuffle_manager_ptr() const {
  return &ctx_->shuffle_manager();
}

std::vector<int> RddBase::PreferredNodes(int p) const {
  if (cached_) {
    int loc = ctx_->block_manager().Location(id_, p);
    if (loc >= 0) return {loc};
  }
  if (preferred_hint_) {
    std::vector<int> hint = preferred_hint_(p);
    if (!hint.empty()) return hint;
  }
  return ComputePreferredNodes(p);
}

BlockData RddBase::GetOrComputeErased(int p, TaskContext* tctx) const {
  if (cached_) {
    BlockManager& bm = ctx_->block_manager();
    if (const CachedBlock* cb = bm.Get(id_, p)) {
      if (!free_cache_reads_) {
        if (cb->node == tctx->node()) {
          tctx->work().mem_read_bytes += cb->bytes;
        } else {
          tctx->work().net_read_bytes += cb->bytes;
        }
      } else if (cb->node != tctx->node()) {
        tctx->work().net_read_bytes += cb->bytes;  // remote reads always pay
      }
      return cb->data;
    }
  }
  BlockData block = ComputeErased(p, tctx);
  if (cached_ && !tctx->HasMissingInput() && tctx->profile().memory_store) {
    uint64_t bytes = BlockBytes(block);
    ctx_->block_manager().Put(id_, p, block, bytes, tctx->node());
  }
  return block;
}

std::vector<int> RddBase::ComputePreferredNodes(int p) const {
  // Default: follow the first narrow parent (pipelined in the same task).
  for (const Dependency& d : deps_) {
    if (d.narrow_parent != nullptr) return d.narrow_parent->PreferredNodes(p);
  }
  return {};
}

// ---------------------------------------------------------------------------
// ShuffleDependency registration
// ---------------------------------------------------------------------------

ShuffleDependency::ShuffleDependency(std::shared_ptr<RddBase> parent,
                                     int num_buckets)
    : parent_(std::move(parent)), num_buckets_(num_buckets) {
  SHARK_CHECK(num_buckets > 0);
  shuffle_id_ = parent_->context()->shuffle_manager().RegisterShuffle(
      parent_->num_partitions(), num_buckets);
}

// ---------------------------------------------------------------------------
// ClusterContext
// ---------------------------------------------------------------------------

ClusterContext::ClusterContext(ClusterConfig config,
                               std::shared_ptr<Dfs> shared_dfs)
    : config_(config) {
  if (shared_dfs != nullptr) {
    dfs_ = std::move(shared_dfs);
  } else {
    dfs_ = std::make_shared<Dfs>(config_.num_nodes, config_.profile.dfs_replication,
                                 config_.seed);
  }
  cluster_ = std::make_unique<Cluster>(config_.num_nodes,
                                       config_.hardware.cores_per_node);
  cost_model_ = std::make_unique<CostModel>(config_.hardware);
  // Cached block sizes are tracked in real bytes while node capacity is a
  // virtual quantity; dividing capacity by the data scale makes a scaled-down
  // dataset occupy the same *fraction* of memory it would at full size.
  uint64_t real_capacity = static_cast<uint64_t>(
      static_cast<double>(config_.hardware.mem_bytes_per_node) /
      std::max(1.0, config_.virtual_data_scale));
  block_manager_ =
      std::make_unique<BlockManager>(config_.num_nodes, real_capacity);
  shuffle_manager_ = std::make_unique<ShuffleManager>();
  scheduler_ = std::make_unique<DagScheduler>(this);
}

ClusterContext::~ClusterContext() = default;

void ClusterContext::ResetClock() {
  cluster_->Reset();
  now_ = 0.0;
}

}  // namespace shark
