#ifndef SHARK_RDD_BROADCAST_H_
#define SHARK_RDD_BROADCAST_H_

#include <cstdint>
#include <set>
#include <vector>

#include "sim/dfs.h"

namespace shark {

/// Master-held broadcast variables (used by map/broadcast joins and the ML
/// driver). The first task on a node pays the network fetch; later tasks on
/// that node read it locally.
class BroadcastRegistry {
 public:
  struct Entry {
    BlockData data;
    uint64_t bytes = 0;
    std::set<int> nodes_with;
  };

  /// Registers a broadcast value; returns its id.
  int Register(BlockData data, uint64_t bytes) {
    entries_.push_back(Entry{std::move(data), bytes, {}});
    return static_cast<int>(entries_.size()) - 1;
  }

  const Entry& entry(int id) const { return entries_[static_cast<size_t>(id)]; }

  /// Read-only access to the value — safe from concurrent task bodies (the
  /// data pointer is immutable after Register; the per-node paid-set is only
  /// mutated by the scheduler via ChargeFetch/DropNode on the main thread).
  const BlockData& data(int id) const {
    return entries_[static_cast<size_t>(id)].data;
  }

  /// Charges the one-time per-node transfer at task-launch time: returns the
  /// network bytes this launch must pay (0 if the node already holds it).
  uint64_t ChargeFetch(int id, int node) {
    Entry& e = entries_[static_cast<size_t>(id)];
    return e.nodes_with.insert(node).second ? e.bytes : 0;
  }

  /// Fetches the value on `node`; sets *fetch_bytes to the network bytes this
  /// access must pay (0 if already resident).
  BlockData Fetch(int id, int node, uint64_t* fetch_bytes) {
    Entry& e = entries_[static_cast<size_t>(id)];
    if (e.nodes_with.insert(node).second) {
      *fetch_bytes = e.bytes;
    } else {
      *fetch_bytes = 0;
    }
    return e.data;
  }

  /// A failed node loses its copy and would refetch.
  void DropNode(int node) {
    for (auto& e : entries_) e.nodes_with.erase(node);
  }

  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace shark

#endif  // SHARK_RDD_BROADCAST_H_
