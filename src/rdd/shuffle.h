#ifndef SHARK_RDD_SHUFFLE_H_
#define SHARK_RDD_SHUFFLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/heavy_hitters.h"
#include "common/histogram.h"
#include "sim/dfs.h"

namespace shark {

class MemoryManager;

/// Statistics the master aggregates from map tasks at a shuffle boundary —
/// the raw material for Partial DAG Execution (§3.1). Bucket byte sizes pass
/// through the 1-byte lossy logarithmic encoding before aggregation, exactly
/// as the paper bounds per-task statistics reports to 1-2 KB.
struct ShuffleStats {
  std::vector<uint64_t> bucket_bytes;    // per fine-grained reduce bucket
  std::vector<uint64_t> bucket_records;
  uint64_t total_bytes = 0;
  uint64_t total_records = 0;
  HeavyHitters heavy_hitters{64};
  ApproxHistogram key_histogram{64};
};

/// Output of one map task of a shuffle: one bucket per fine-grained reduce
/// partition, resident on the node that ran the map task (in memory for
/// Shark, on local disk for Hadoop — the profile decides the fetch cost).
struct MapOutput {
  bool present = false;
  int node = -1;
  std::vector<BlockData> buckets;
  std::vector<uint64_t> bucket_bytes;
  std::vector<uint64_t> bucket_records;
  /// Multiplier translating real per-record reduce-side charges into
  /// faithful virtual charges for cardinality-bounded (combined) outputs;
  /// empty means 1.0 (linear scaling is already correct).
  std::vector<double> bucket_cost_scale;
  /// Serving mode (§5's memory-based shuffle knob, now per output): false =
  /// buckets stay in the map node's memory and fetches cost mem/net; true =
  /// buckets live on local disk (the Hadoop profile's global default, or a
  /// per-node flip when the node's memory budget had no room at launch).
  bool on_disk = false;
  /// Bytes this output charges to the node's shuffle-buffer ledger while
  /// resident in memory (0 when on_disk). Managed by ShuffleManager.
  uint64_t ledger_bytes = 0;
};

/// Tracks materialized map outputs per shuffle. Lost outputs (node failure)
/// are detected by reduce-side fetches and recomputed from lineage by the
/// scheduler.
class ShuffleManager {
 public:
  /// Optional memory arbiter: memory-served map outputs are charged to its
  /// per-node shuffle-buffer ledger while resident. May stay null (unit
  /// tests construct bare ShuffleManagers).
  void set_memory_manager(MemoryManager* mm) { memory_manager_ = mm; }

  /// Registers a shuffle; returns its id.
  int RegisterShuffle(int num_map_partitions, int num_buckets);

  bool IsRegistered(int shuffle_id) const;
  int NumBuckets(int shuffle_id) const;
  int NumMapPartitions(int shuffle_id) const;

  /// Stores one map task's output and folds its sizes into the stats.
  void PutMapOutput(int shuffle_id, int map_partition, MapOutput output);

  /// nullptr if absent — never computed, or lost to a failure. A non-null
  /// result is always present (fetchable).
  const MapOutput* GetMapOutput(int shuffle_id, int map_partition) const;

  /// True once every map partition has a present output.
  bool IsComplete(int shuffle_id) const;

  /// Map partitions whose output is missing or lost.
  std::vector<int> MissingMapPartitions(int shuffle_id) const;

  const ShuffleStats& Stats(int shuffle_id) const;

  /// Whether map partition `p`'s statistics were already folded in (guards
  /// sketch double-counting on recomputation).
  bool StatsRecorded(int shuffle_id, int map_partition) const;

  /// Mutable stats for the scheduler's sketch aggregation.
  ShuffleStats* MutableStats(int shuffle_id);

  /// Marks outputs on a failed node as lost.
  void DropNode(int node);

  void DropShuffle(int shuffle_id);
  void Clear();

 private:
  struct ShuffleState {
    int num_buckets = 0;
    std::vector<MapOutput> outputs;  // indexed by map partition
    // Whether a map partition's sizes were already folded into stats; a
    // recomputation after failure must not double count.
    std::vector<char> stats_recorded;
    ShuffleStats stats;
  };

  const ShuffleState& GetState(int shuffle_id) const;
  void ReleaseLedger(MapOutput* out);

  int next_id_ = 0;
  std::map<int, ShuffleState> shuffles_;
  MemoryManager* memory_manager_ = nullptr;
};

}  // namespace shark

#endif  // SHARK_RDD_SHUFFLE_H_
