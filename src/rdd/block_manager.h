#ifndef SHARK_RDD_BLOCK_MANAGER_H_
#define SHARK_RDD_BLOCK_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <utility>
#include <vector>

#include "sim/dfs.h"

namespace shark {

/// Key of a cached RDD partition.
struct BlockKey {
  int rdd_id;
  int partition;
  bool operator<(const BlockKey& other) const {
    return rdd_id != other.rdd_id ? rdd_id < other.rdd_id
                                  : partition < other.partition;
  }
  bool operator==(const BlockKey& other) const {
    return rdd_id == other.rdd_id && partition == other.partition;
  }
};

/// A cached block and its (virtual) location.
struct CachedBlock {
  BlockData data;
  uint64_t bytes = 0;  // virtual in-memory footprint
  int node = 0;
};

/// Cluster-wide view of the per-node RDD caches (Spark's block manager).
/// Exactly one copy of each partition is kept (§2.2: lineage makes
/// replication unnecessary); per-node capacity is enforced with LRU
/// eviction. Dropping a node discards its blocks — they are recomputed from
/// lineage on next access.
class BlockManager {
 public:
  BlockManager(int num_nodes, uint64_t capacity_bytes_per_node);

  /// Looks up a block; touches LRU. Returns nullptr if absent.
  const CachedBlock* Get(int rdd_id, int partition);

  /// Side-effect-free lookup (no LRU touch). Safe to call from concurrent
  /// host threads while no thread mutates the manager — task bodies read the
  /// stage-start snapshot through this and log their accesses; the scheduler
  /// replays committed logs (Touch/Put) on the main thread.
  const CachedBlock* Peek(int rdd_id, int partition) const;

  /// Replays the LRU effect of a Get (no-op if the block is absent, e.g.
  /// evicted or dropped between the logged access and the replay).
  void Touch(int rdd_id, int partition);

  /// Whether a block of `bytes` can ever fit on a node.
  bool Fits(uint64_t bytes) const { return bytes <= capacity_per_node_; }

  /// Location lookup without LRU side effects (used by the scheduler for
  /// locality-aware placement). Returns -1 if absent.
  int Location(int rdd_id, int partition) const;

  /// Inserts a block on `node`, evicting LRU blocks on that node as needed.
  /// Returns false (and does not insert) if `bytes` exceeds node capacity.
  bool Put(int rdd_id, int partition, BlockData data, uint64_t bytes, int node);

  /// Drops every block cached on a failed node.
  void DropNode(int node);

  /// Drops all partitions of an RDD (uncache / unpersist).
  void DropRdd(int rdd_id);

  void Clear();

  uint64_t UsedBytes(int node) const;
  uint64_t TotalUsedBytes() const;
  size_t NumBlocks() const { return blocks_.size(); }

  /// Partitions of `rdd_id` currently cached (sorted).
  std::vector<int> CachedPartitions(int rdd_id) const;

  /// Observer invoked per LRU eviction with (blocks, bytes). Evictions only
  /// happen inside Put, which runs on the driver thread during commit-order
  /// replay, so metrics fed from here stay deterministic.
  void set_eviction_hook(std::function<void(uint64_t, uint64_t)> hook) {
    eviction_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    CachedBlock block;
    std::list<BlockKey>::iterator lru_pos;
  };

  void Evict(int node, uint64_t needed);

  uint64_t capacity_per_node_;
  std::function<void(uint64_t, uint64_t)> eviction_hook_;
  std::vector<uint64_t> used_;
  std::vector<std::list<BlockKey>> lru_;  // per node, front = most recent
  std::map<BlockKey, Entry> blocks_;
};

}  // namespace shark

#endif  // SHARK_RDD_BLOCK_MANAGER_H_
