#include "rdd/shuffle.h"

#include "common/logging.h"
#include "common/size_encoding.h"
#include "mem/memory_manager.h"

namespace shark {

int ShuffleManager::RegisterShuffle(int num_map_partitions, int num_buckets) {
  SHARK_CHECK(num_map_partitions > 0 && num_buckets > 0);
  int id = next_id_++;
  ShuffleState state;
  state.num_buckets = num_buckets;
  state.outputs.resize(static_cast<size_t>(num_map_partitions));
  state.stats_recorded.assign(static_cast<size_t>(num_map_partitions), 0);
  state.stats.bucket_bytes.assign(static_cast<size_t>(num_buckets), 0);
  state.stats.bucket_records.assign(static_cast<size_t>(num_buckets), 0);
  shuffles_.emplace(id, std::move(state));
  return id;
}

bool ShuffleManager::IsRegistered(int shuffle_id) const {
  return shuffles_.count(shuffle_id) > 0;
}

const ShuffleManager::ShuffleState& ShuffleManager::GetState(
    int shuffle_id) const {
  auto it = shuffles_.find(shuffle_id);
  SHARK_CHECK(it != shuffles_.end());
  return it->second;
}

int ShuffleManager::NumBuckets(int shuffle_id) const {
  return GetState(shuffle_id).num_buckets;
}

int ShuffleManager::NumMapPartitions(int shuffle_id) const {
  return static_cast<int>(GetState(shuffle_id).outputs.size());
}

void ShuffleManager::PutMapOutput(int shuffle_id, int map_partition,
                                  MapOutput output) {
  auto it = shuffles_.find(shuffle_id);
  SHARK_CHECK(it != shuffles_.end());
  ShuffleState& state = it->second;
  auto& slot = state.outputs[static_cast<size_t>(map_partition)];
  bool recorded = state.stats_recorded[static_cast<size_t>(map_partition)] != 0;
  // Fold this task's sizes into the master's statistics. Sizes pass through
  // the lossy 1-byte log encoding (§3.1), so the optimizer sees what a real
  // Shark master would see. A re-execution after failure does not double
  // count.
  if (!recorded) {
    for (size_t b = 0; b < output.bucket_bytes.size(); ++b) {
      uint64_t approx = SizeEncoding::Decode(SizeEncoding::Encode(output.bucket_bytes[b]));
      state.stats.bucket_bytes[b] += approx;
      state.stats.total_bytes += approx;
      state.stats.bucket_records[b] += output.bucket_records[b];
      state.stats.total_records += output.bucket_records[b];
    }
    state.stats_recorded[static_cast<size_t>(map_partition)] = 1;
  }
  // Memory-served outputs occupy the node's shuffle-buffer share of the
  // memory budget while resident; disk-served outputs occupy none. A slot
  // being replaced (e.g. recomputed on a new node) gives its bytes back
  // first.
  ReleaseLedger(&slot);
  output.present = true;
  if (!output.on_disk && memory_manager_ != nullptr) {
    uint64_t total = 0;
    for (uint64_t b : output.bucket_bytes) total += b;
    output.ledger_bytes = total;
    memory_manager_->AddShuffleBytes(output.node, total);
  } else {
    output.ledger_bytes = 0;
  }
  slot = std::move(output);
}

void ShuffleManager::ReleaseLedger(MapOutput* out) {
  if (out->ledger_bytes > 0 && memory_manager_ != nullptr && out->node >= 0) {
    memory_manager_->ReleaseShuffleBytes(out->node, out->ledger_bytes);
  }
  out->ledger_bytes = 0;
}

const MapOutput* ShuffleManager::GetMapOutput(int shuffle_id,
                                              int map_partition) const {
  const ShuffleState& state = GetState(shuffle_id);
  const MapOutput& out = state.outputs[static_cast<size_t>(map_partition)];
  // An output lost to a node death (DropNode leaves node >= 0 but clears
  // present and the buckets) must read as absent, not as an empty output —
  // otherwise a reduce-side fetch would silently consume cleared buckets
  // instead of triggering lineage recomputation.
  if (!out.present) return nullptr;
  return &out;
}

bool ShuffleManager::IsComplete(int shuffle_id) const {
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) return false;
  for (const auto& out : it->second.outputs) {
    if (!out.present) return false;
  }
  return true;
}

std::vector<int> ShuffleManager::MissingMapPartitions(int shuffle_id) const {
  const ShuffleState& state = GetState(shuffle_id);
  std::vector<int> missing;
  for (size_t i = 0; i < state.outputs.size(); ++i) {
    if (!state.outputs[i].present) missing.push_back(static_cast<int>(i));
  }
  return missing;
}

const ShuffleStats& ShuffleManager::Stats(int shuffle_id) const {
  return GetState(shuffle_id).stats;
}

bool ShuffleManager::StatsRecorded(int shuffle_id, int map_partition) const {
  return GetState(shuffle_id).stats_recorded[static_cast<size_t>(map_partition)] !=
         0;
}

ShuffleStats* ShuffleManager::MutableStats(int shuffle_id) {
  auto it = shuffles_.find(shuffle_id);
  SHARK_CHECK(it != shuffles_.end());
  return &it->second.stats;
}

void ShuffleManager::DropNode(int node) {
  for (auto& [id, state] : shuffles_) {
    for (auto& out : state.outputs) {
      if (out.present && out.node == node) {
        ReleaseLedger(&out);
        out.present = false;
        out.buckets.clear();
      }
    }
  }
}

void ShuffleManager::DropShuffle(int shuffle_id) {
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) return;
  for (auto& out : it->second.outputs) ReleaseLedger(&out);
  shuffles_.erase(it);
}

void ShuffleManager::Clear() {
  for (auto& [id, state] : shuffles_) {
    for (auto& out : state.outputs) ReleaseLedger(&out);
  }
  shuffles_.clear();
}

}  // namespace shark
