#include "rdd/block_manager.h"

#include "common/logging.h"

namespace shark {

BlockManager::BlockManager(int num_nodes, uint64_t capacity_bytes_per_node)
    : capacity_per_node_(capacity_bytes_per_node),
      used_(static_cast<size_t>(num_nodes), 0),
      lru_(static_cast<size_t>(num_nodes)) {
  SHARK_CHECK(num_nodes > 0);
}

const CachedBlock* BlockManager::Get(int rdd_id, int partition) {
  auto it = blocks_.find(BlockKey{rdd_id, partition});
  if (it == blocks_.end()) return nullptr;
  Entry& e = it->second;
  auto& node_lru = lru_[static_cast<size_t>(e.block.node)];
  node_lru.splice(node_lru.begin(), node_lru, e.lru_pos);
  return &e.block;
}

const CachedBlock* BlockManager::Peek(int rdd_id, int partition) const {
  auto it = blocks_.find(BlockKey{rdd_id, partition});
  return it == blocks_.end() ? nullptr : &it->second.block;
}

void BlockManager::Touch(int rdd_id, int partition) {
  Get(rdd_id, partition);
}

int BlockManager::Location(int rdd_id, int partition) const {
  auto it = blocks_.find(BlockKey{rdd_id, partition});
  return it == blocks_.end() ? -1 : it->second.block.node;
}

bool BlockManager::Put(int rdd_id, int partition, BlockData data,
                       uint64_t bytes, int node) {
  if (bytes > capacity_per_node_) return false;
  BlockKey key{rdd_id, partition};
  auto existing = blocks_.find(key);
  if (existing != blocks_.end()) {
    // Replace in place (e.g. recomputed after failure on a new node).
    int old_node = existing->second.block.node;
    used_[static_cast<size_t>(old_node)] -= existing->second.block.bytes;
    lru_[static_cast<size_t>(old_node)].erase(existing->second.lru_pos);
    blocks_.erase(existing);
  }
  uint64_t& node_used = used_[static_cast<size_t>(node)];
  if (node_used + bytes > capacity_per_node_) {
    Evict(node, node_used + bytes - capacity_per_node_);
  }
  auto& node_lru = lru_[static_cast<size_t>(node)];
  node_lru.push_front(key);
  Entry entry;
  entry.block = CachedBlock{std::move(data), bytes, node};
  entry.lru_pos = node_lru.begin();
  blocks_.emplace(key, std::move(entry));
  node_used += bytes;
  return true;
}

void BlockManager::Evict(int node, uint64_t needed) {
  auto& node_lru = lru_[static_cast<size_t>(node)];
  uint64_t freed = 0;
  uint64_t evicted_blocks = 0;
  while (freed < needed && !node_lru.empty()) {
    BlockKey victim = node_lru.back();
    node_lru.pop_back();
    auto it = blocks_.find(victim);
    SHARK_CHECK(it != blocks_.end());
    freed += it->second.block.bytes;
    used_[static_cast<size_t>(node)] -= it->second.block.bytes;
    blocks_.erase(it);
    evicted_blocks += 1;
  }
  if (evicted_blocks > 0 && eviction_hook_) {
    eviction_hook_(evicted_blocks, freed);
  }
}

void BlockManager::DropNode(int node) {
  auto& node_lru = lru_[static_cast<size_t>(node)];
  for (const BlockKey& key : node_lru) blocks_.erase(key);
  node_lru.clear();
  used_[static_cast<size_t>(node)] = 0;
}

void BlockManager::DropRdd(int rdd_id) {
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first.rdd_id == rdd_id) {
      int node = it->second.block.node;
      used_[static_cast<size_t>(node)] -= it->second.block.bytes;
      lru_[static_cast<size_t>(node)].erase(it->second.lru_pos);
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockManager::Clear() {
  blocks_.clear();
  for (auto& l : lru_) l.clear();
  for (auto& u : used_) u = 0;
}

uint64_t BlockManager::UsedBytes(int node) const {
  return used_[static_cast<size_t>(node)];
}

uint64_t BlockManager::TotalUsedBytes() const {
  uint64_t total = 0;
  for (uint64_t u : used_) total += u;
  return total;
}

std::vector<int> BlockManager::CachedPartitions(int rdd_id) const {
  std::vector<int> out;
  for (auto it = blocks_.lower_bound(BlockKey{rdd_id, 0});
       it != blocks_.end() && it->first.rdd_id == rdd_id; ++it) {
    out.push_back(it->first.partition);
  }
  return out;
}

}  // namespace shark
