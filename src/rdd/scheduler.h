#ifndef SHARK_RDD_SCHEDULER_H_
#define SHARK_RDD_SCHEDULER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "rdd/rdd.h"
#include "rdd/shuffle.h"

namespace shark {

class ClusterContext;
struct TaskSetState;

/// Aggregate metrics of one job (action) execution.
struct JobMetrics {
  double start_time = 0.0;
  double end_time = 0.0;
  double duration() const { return end_time - start_time; }

  int stages = 0;
  int tasks_launched = 0;
  int tasks_failed = 0;       // aborted by node failure
  int tasks_rerun_missing = 0;  // re-run after missing shuffle input
  int map_tasks_recovered = 0;  // lineage recomputation of lost map outputs
  int speculative_tasks = 0;
  TaskWork total_work;
  /// Node that produced each result partition (result stage only).
  std::vector<int> result_nodes;
};

/// Identity and fair-share accounting of one query/job admitted to the
/// shared event loop. The scheduler never creates these for callers — the
/// JobManager owns one per cooperative job and installs it via
/// SetCurrentJobState on the job's thread; plain single-caller use falls
/// back to the scheduler's built-in default job.
struct JobState {
  /// Admission order; fairness tiebreak and deterministic identity.
  int job_seq = 0;
  std::string label;
  /// Inter-query weight: a job with weight 2 is entitled to twice the task
  /// occupancy of a weight-1 job when both have runnable tasks.
  double weight = 1.0;
  /// Accumulated virtual core occupancy (sum of committed+speculative task
  /// durations as launched). The fair-share policy launches the runnable
  /// set whose job has the smallest service_seconds / weight.
  double service_seconds = 0.0;
  /// True for JobManager-managed jobs whose threads park in ExecuteTaskSet
  /// and are resumed by the shared event loop via the coop hooks.
  bool cooperative = false;
  /// Per-job query-profile recorder; null falls back to the context-global
  /// collector (single-caller mode). With concurrent profiled queries each
  /// job's stages land in its own profile instead of whichever query opened
  /// a profile first.
  TraceCollector* trace = nullptr;
  /// Debris ledger: shuffles registered and RDDs cached while this job was
  /// current. A failing query drops exactly its own entries (watermark-based
  /// cleanup would be wrong under concurrent admission, where id ranges
  /// interleave across jobs). Successful queries keep seed semantics —
  /// results stay resident — and merely truncate the ledger.
  std::vector<int> owned_shuffle_ids;
  std::vector<int> owned_cache_rdd_ids;
};

/// The job the calling thread is executing on behalf of (set by the
/// JobManager around a cooperative job body), or nullptr on plain callers
/// and the event-loop driver thread.
JobState* CurrentJobState();
void SetCurrentJobState(JobState* job);

/// Runs RDD actions on the simulated cluster: builds stages at shuffle
/// boundaries, schedules tasks with data locality, and recovers from node
/// failures by lineage recomputation (§2.3). Deterministic given the
/// context's seed and fault schedule.
///
/// Multiple jobs can be in flight at once: every ExecuteTaskSet call
/// registers a task set with the shared event loop, which interleaves task
/// launches across all active sets under a weighted fair-share inter-query
/// policy. A plain caller (no JobManager) drives the loop itself until its
/// own set completes — with one active set the loop degenerates exactly to
/// the historical one-job behavior, so single-job virtual times are
/// bit-identical. Cooperative jobs park their thread instead and are
/// resumed by whoever drives the loop (the JobManager driver).
class DagScheduler {
 public:
  explicit DagScheduler(ClusterContext* ctx);
  ~DagScheduler();

  DagScheduler(const DagScheduler&) = delete;
  DagScheduler& operator=(const DagScheduler&) = delete;

  /// Computes all partitions of `rdd`, returning blocks in partition order.
  /// Ancestor shuffle stages are materialized first (and reused if already
  /// materialized by a previous job — the basis of partial DAG execution).
  Result<std::vector<BlockData>> RunJob(const std::shared_ptr<RddBase>& rdd);

  /// Computes only the given partitions (map pruning launches no tasks for
  /// pruned partitions).
  Result<std::vector<BlockData>> RunJobOnPartitions(
      const std::shared_ptr<RddBase>& rdd, const std::vector<int>& partitions);

  /// Materializes a shuffle's map stage (if not already) and returns the
  /// statistics observed by the master — the PDE entry point (§3.1).
  Result<ShuffleStats> EnsureShuffle(
      const std::shared_ptr<ShuffleDependency>& dep);

  /// Metrics of the most recent job *on this thread's call path*. Safe under
  /// cooperative multi-job execution because job threads run one at a time
  /// and read this immediately after their RunJob/EnsureShuffle returns,
  /// before the next park point hands control away.
  const JobMetrics& last_job() const { return last_job_; }

  // ---- Multi-job event loop (used by JobManager) ---------------------------

  /// What one DriveOnce call did.
  enum class DriveResult {
    kProcessed,  // handled one event (launch/death/completion/finalize)
    kDeferred,   // earliest event is after the time limit; nothing done
    kIdle,       // no active task sets at all
  };

  /// Hooks for cooperative jobs. `park` blocks the calling job thread until
  /// its awaited set finalizes; `resume` (called by the event loop on the
  /// driving thread) wakes a job whose set just finalized and blocks until
  /// that job parks again or finishes.
  struct CoopHooks {
    std::function<void(JobState*)> park;
    std::function<void(JobState*)> resume;
  };
  void set_coop_hooks(CoopHooks hooks) { coop_hooks_ = std::move(hooks); }

  /// Processes the single earliest pending event across all active task
  /// sets, if it occurs at or before `time_limit`. Finalizing a set resumes
  /// its cooperative owner (which may register new sets) before returning.
  /// Only the JobManager driver (or a plain caller via ExecuteTaskSet's
  /// internal drive) may call this.
  Result<DriveResult> DriveOnce(double time_limit);

  /// True while any task set is registered with the event loop.
  bool HasActiveSets() const { return !active_sets_.empty(); }

  /// Quiesces host-parallel task-body precomputation and applies pending
  /// committed cache effects. MUST be called before mutating shared engine
  /// state (block cache, shuffle ledger) from outside the event loop — e.g.
  /// RddBase::Uncache or ShuffleDependency teardown while other jobs are in
  /// flight. Cheap no-op when nothing is active.
  void QuiesceForSharedStateMutation();

 private:
  friend struct TaskSetState;

  /// A task body's result. Bodies are pure functions of (partition, shared
  /// state frozen at stage start), so outcomes can be computed ahead of
  /// placement on any host thread; everything that depends on the eventual
  /// (node, launch order) — conditional read costs, the per-node broadcast
  /// paid-set, and cache mutations — is carried alongside and resolved by
  /// the scheduler at launch/commit time. Copyable: a speculative duplicate
  /// launch reuses the same outcome under different placement.
  struct TaskOutcome {
    BlockData block;                  // result-stage payload
    MapOutput map_output;             // map-stage payload
    TaskWork work;                    // node-independent work counters
    uint64_t rows_out = 0;            // output rows (profile annotation)
    uint64_t bytes_out = 0;           // output bytes (map stages)
    std::vector<std::pair<int, int>> missing_inputs;
    std::vector<DeferredCharge> charges;   // resolved per launch
    std::vector<int> broadcast_fetches;    // charged per launch, per node
    std::vector<CacheOp> cache_log;        // replayed if the task commits
    std::map<int, CacheCounters> cache_counters;  // per-rdd hit/miss traffic
    std::vector<MemOp> mem_log;            // replayed if the task commits
    uint64_t spill_bytes = 0;              // working set spilled to disk
    uint32_t spill_partitions = 0;         // grace-hash partitions/sort runs
  };

  using TaskBody = std::function<TaskOutcome(int partition, TaskContext*)>;
  // Returns false if the committed output was immediately invalidated.
  using CommitFn = std::function<void(int partition, TaskOutcome&&, int node)>;
  // Partitions of the current task set whose committed output lives on a
  // node; used to re-run map tasks whose outputs die with their node.
  using LostOutputFn = std::function<std::vector<int>(int node)>;

  /// Identity of a task set for the query profile.
  struct StageInfo {
    std::string label;
    bool is_map_stage = false;
    int shuffle_id = -1;
  };

  /// Event-driven execution of one set of tasks (one stage, or a recovery
  /// sub-stage). Handles locality, heartbeat quantization, failures,
  /// missing-input recovery and speculation; records the stage into the
  /// owning job's TraceCollector when a profile is active. Registers the
  /// set with the shared event loop; plain callers drive the loop until the
  /// set finalizes, cooperative job threads park instead.
  Status ExecuteTaskSet(const std::vector<int>& partitions,
                        const std::function<std::vector<int>(int)>& preferred,
                        const TaskBody& body, const CommitFn& commit,
                        const LostOutputFn& lost_outputs, JobMetrics* metrics,
                        const StageInfo& info);

  /// Registers dep in the id registry and runs its map tasks for the given
  /// parent partitions (lineage recomputation path).
  Status RunMapTasks(const std::shared_ptr<ShuffleDependency>& dep,
                     const std::vector<int>& map_partitions,
                     JobMetrics* metrics);

  /// Walks the lineage graph and materializes every incomplete ancestor
  /// shuffle, parents first.
  Status EnsureAncestorShuffles(const std::shared_ptr<RddBase>& rdd,
                                JobMetrics* metrics);

  /// Recomputes lost map outputs reported by a reduce task.
  Status RecoverMissing(const std::vector<std::pair<int, int>>& missing,
                        JobMetrics* metrics);

  void HandleNodeDeath(int node);

  // ---- shared event loop ---------------------------------------------------

  /// The job new work registered on this thread belongs to: the thread's
  /// own job, the recovery override, or the plain default job.
  JobState* ResolveJobForRegistration();
  /// The profile collector current work records into (per-job when set).
  TraceCollector& CollectorForCurrentWork();
  /// Applies committed tasks' cache accesses in commit order.
  void FlushReplay();
  /// Computes `task`'s outcome into its slot (worker threads or inline).
  void ComputeSlot(TaskSetState* set, int task, long at_epoch);
  /// Yields `task`'s outcome, recomputing inline if the slot is stale.
  Status ObtainOutcome(TaskSetState* set, int task, TaskOutcome* out);
  void RegisterTaskSet(TaskSetState* set);
  void UnregisterTaskSet(TaskSetState* set);
  /// Drives the loop until `target` finalizes (plain callers and nested
  /// lineage-recovery stages).
  Status DriveUntilFinalized(TaskSetState* target);
  /// One launch/speculation/death/completion event; the loop body.
  Result<DriveResult> StepOnce(double time_limit);
  /// Closes a completed set: trace/skew/clock bookkeeping, removal from the
  /// active list, and resuming a cooperative owner.
  void FinalizeSet(TaskSetState* set);
  /// Fails a set (scheduling error): records the status, removes it, and
  /// resumes a cooperative owner. Never records stage-end bookkeeping.
  void FailSet(TaskSetState* set, const Status& status);
  /// Applies node deaths at virtual time `at` across all non-suspended sets.
  void ProcessDeaths(const std::vector<int>& killed, double at);
  /// Cancels all precomputation, applies pending cache effects in commit
  /// order, advances the epoch and re-latches the task memory budget.
  void BumpEpoch();
  /// Launches `task` of `set` on (node, core) available at `avail`.
  Status Launch(TaskSetState* set, int task, int node, int core, double avail,
                bool speculative);
  /// Processes the completion of set->inflight[idx] at its finish time.
  Status ProcessCompletion(TaskSetState* set, size_t idx);
  /// Global pending/running counts across active sets (timeline samples).
  int TotalPending() const;
  int TotalRunning() const;
  /// True when job `a` should be served before job `b` under the weighted
  /// fair-share policy.
  static bool FairBefore(const JobState* a, const JobState* b);

  ClusterContext* ctx_;
  JobMetrics last_job_;
  std::map<int, std::weak_ptr<ShuffleDependency>> shuffle_registry_;
  // (node, heartbeat tick) -> tasks already started in that tick.
  std::map<std::pair<int, long>, int> heartbeat_slots_;
  // Monotonic task-set counter; seeds each task's private rng so results do
  // not depend on host-thread interleaving.
  uint64_t next_stage_seq_ = 0;

  // Task sets currently registered with the event loop, registration order.
  std::vector<TaskSetState*> active_sets_;
  // Committed tasks' cache accesses, in commit order, awaiting replay.
  std::vector<CacheOp> replay_log_;
  // Frozen-state epoch for host-parallel precomputation: outcomes computed
  // under an older epoch are recomputed inline at launch.
  long epoch_ = 0;
  // Per-task working-set budget, re-latched only at epoch bumps so all
  // concurrently computed task bodies see one frozen value.
  uint64_t task_mem_budget_ = 0;
  // Owning job for sets registered from inside the event loop (lineage
  // recovery runs on the driving thread, not the job's own thread).
  JobState* override_job_ = nullptr;
  // Identity for plain single-caller execution.
  JobState default_job_;
  CoopHooks coop_hooks_;
};

}  // namespace shark

#endif  // SHARK_RDD_SCHEDULER_H_
