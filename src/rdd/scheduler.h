#ifndef SHARK_RDD_SCHEDULER_H_
#define SHARK_RDD_SCHEDULER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "rdd/rdd.h"
#include "rdd/shuffle.h"

namespace shark {

class ClusterContext;

/// Aggregate metrics of one job (action) execution.
struct JobMetrics {
  double start_time = 0.0;
  double end_time = 0.0;
  double duration() const { return end_time - start_time; }

  int stages = 0;
  int tasks_launched = 0;
  int tasks_failed = 0;       // aborted by node failure
  int tasks_rerun_missing = 0;  // re-run after missing shuffle input
  int map_tasks_recovered = 0;  // lineage recomputation of lost map outputs
  int speculative_tasks = 0;
  TaskWork total_work;
  /// Node that produced each result partition (result stage only).
  std::vector<int> result_nodes;
};

/// Runs RDD actions on the simulated cluster: builds stages at shuffle
/// boundaries, schedules tasks with data locality, and recovers from node
/// failures by lineage recomputation (§2.3). Deterministic given the
/// context's seed and fault schedule.
class DagScheduler {
 public:
  explicit DagScheduler(ClusterContext* ctx) : ctx_(ctx) {}

  DagScheduler(const DagScheduler&) = delete;
  DagScheduler& operator=(const DagScheduler&) = delete;

  /// Computes all partitions of `rdd`, returning blocks in partition order.
  /// Ancestor shuffle stages are materialized first (and reused if already
  /// materialized by a previous job — the basis of partial DAG execution).
  Result<std::vector<BlockData>> RunJob(const std::shared_ptr<RddBase>& rdd);

  /// Computes only the given partitions (map pruning launches no tasks for
  /// pruned partitions).
  Result<std::vector<BlockData>> RunJobOnPartitions(
      const std::shared_ptr<RddBase>& rdd, const std::vector<int>& partitions);

  /// Materializes a shuffle's map stage (if not already) and returns the
  /// statistics observed by the master — the PDE entry point (§3.1).
  Result<ShuffleStats> EnsureShuffle(
      const std::shared_ptr<ShuffleDependency>& dep);

  /// Metrics of the most recent job.
  const JobMetrics& last_job() const { return last_job_; }

 private:
  /// A task body's result. Bodies are pure functions of (partition, shared
  /// state frozen at stage start), so outcomes can be computed ahead of
  /// placement on any host thread; everything that depends on the eventual
  /// (node, launch order) — conditional read costs, the per-node broadcast
  /// paid-set, and cache mutations — is carried alongside and resolved by
  /// the scheduler at launch/commit time. Copyable: a speculative duplicate
  /// launch reuses the same outcome under different placement.
  struct TaskOutcome {
    BlockData block;                  // result-stage payload
    MapOutput map_output;             // map-stage payload
    TaskWork work;                    // node-independent work counters
    uint64_t rows_out = 0;            // output rows (profile annotation)
    uint64_t bytes_out = 0;           // output bytes (map stages)
    std::vector<std::pair<int, int>> missing_inputs;
    std::vector<DeferredCharge> charges;   // resolved per launch
    std::vector<int> broadcast_fetches;    // charged per launch, per node
    std::vector<CacheOp> cache_log;        // replayed if the task commits
    std::map<int, CacheCounters> cache_counters;  // per-rdd hit/miss traffic
    std::vector<MemOp> mem_log;            // replayed if the task commits
    uint64_t spill_bytes = 0;              // working set spilled to disk
    uint32_t spill_partitions = 0;         // grace-hash partitions/sort runs
  };

  using TaskBody = std::function<TaskOutcome(int partition, TaskContext*)>;
  // Returns false if the committed output was immediately invalidated.
  using CommitFn = std::function<void(int partition, TaskOutcome&&, int node)>;
  // Partitions of the current task set whose committed output lives on a
  // node; used to re-run map tasks whose outputs die with their node.
  using LostOutputFn = std::function<std::vector<int>(int node)>;

  /// Identity of a task set for the query profile.
  struct StageInfo {
    std::string label;
    bool is_map_stage = false;
    int shuffle_id = -1;
  };

  /// Event-driven execution of one set of tasks (one stage, or a recovery
  /// sub-stage). Handles locality, heartbeat quantization, failures,
  /// missing-input recovery and speculation; records the stage into the
  /// context's TraceCollector when a profile is active.
  Status ExecuteTaskSet(const std::vector<int>& partitions,
                        const std::function<std::vector<int>(int)>& preferred,
                        const TaskBody& body, const CommitFn& commit,
                        const LostOutputFn& lost_outputs, JobMetrics* metrics,
                        const StageInfo& info);

  /// Registers dep in the id registry and runs its map tasks for the given
  /// parent partitions (lineage recomputation path).
  Status RunMapTasks(const std::shared_ptr<ShuffleDependency>& dep,
                     const std::vector<int>& map_partitions,
                     JobMetrics* metrics);

  /// Walks the lineage graph and materializes every incomplete ancestor
  /// shuffle, parents first.
  Status EnsureAncestorShuffles(const std::shared_ptr<RddBase>& rdd,
                                JobMetrics* metrics);

  /// Recomputes lost map outputs reported by a reduce task.
  Status RecoverMissing(const std::vector<std::pair<int, int>>& missing,
                        JobMetrics* metrics);

  void HandleNodeDeath(int node);

  ClusterContext* ctx_;
  JobMetrics last_job_;
  std::map<int, std::weak_ptr<ShuffleDependency>> shuffle_registry_;
  // (node, heartbeat tick) -> tasks already started in that tick.
  std::map<std::pair<int, long>, int> heartbeat_slots_;
  // Monotonic task-set counter; seeds each task's private rng so results do
  // not depend on host-thread interleaving.
  uint64_t next_stage_seq_ = 0;
};

}  // namespace shark

#endif  // SHARK_RDD_SCHEDULER_H_
