#include "rdd/job_manager.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "mem/memory_manager.h"
#include "rdd/context.h"
#include "sim/cluster_metrics.h"

namespace shark {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

struct JobManager::JobRun {
  JobSpec spec;
  JobState state;
  TraceCollector trace;
  std::thread thread;
  uint64_t ticket = 0;

  enum class Phase { kNotStarted, kRunning, kParked, kFinished };
  Phase phase = Phase::kNotStarted;  // guarded by mu_
  bool runnable = false;             // guarded by mu_

  Status result;
  bool queued = false;
  double arrival = 0.0;
  double admit = 0.0;
  double finish = 0.0;
  /// Streaming mode stamps Submit() time for wall-clock latency; batch mode
  /// leaves it unset so outcomes stay a pure virtual-time function.
  bool host_timed = false;
  std::chrono::steady_clock::time_point host_start;
};

JobManager::JobManager(ClusterContext* ctx, Options options)
    : ctx_(ctx), options_(options) {
  DagScheduler::CoopHooks hooks;
  hooks.park = [this](JobState* job) { ParkHook(job); };
  hooks.resume = [this](JobState* job) { ResumeHook(job); };
  ctx_->scheduler().set_coop_hooks(std::move(hooks));
}

JobManager::~JobManager() {
  if (started_) Stop();
  ctx_->scheduler().set_coop_hooks(DagScheduler::CoopHooks());
}

// ---- Baton protocol --------------------------------------------------------
//
// Exactly one thread — the driver or one job thread — executes between any
// two handoffs, and every handoff passes through mu_, so all engine state is
// mutex-ordered even though no engine structure carries its own lock.

void JobManager::ResumeUntilBlocked(JobRun* run) {
  std::unique_lock<std::mutex> lk(mu_);
  if (run->phase == JobRun::Phase::kNotStarted) {
    run->phase = JobRun::Phase::kRunning;
    run->runnable = true;
    run->thread = std::thread([this, run] { JobThreadMain(run); });
  } else if (run->phase == JobRun::Phase::kFinished) {
    return;
  } else {
    run->runnable = true;
    cv_.notify_all();
  }
  cv_.wait(lk, [run] { return !run->runnable; });
}

void JobManager::JobThreadMain(JobRun* run) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [run] { return run->runnable; });
  }
  SetCurrentJobState(&run->state);
  Status status = run->spec.body ? run->spec.body() : Status::OK();
  // Reading the clock without the lock is safe: the driver is blocked until
  // this thread parks or finishes, and the handoff synchronizes through mu_.
  const double finish = ctx_->now();
  SetCurrentJobState(nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  run->result = std::move(status);
  run->finish = finish;
  run->phase = JobRun::Phase::kFinished;
  run->runnable = false;
  cv_.notify_all();
}

void JobManager::ParkHook(JobState* job) {
  std::unique_lock<std::mutex> lk(mu_);
  JobRun* run = by_state_.at(job);
  run->phase = JobRun::Phase::kParked;
  run->runnable = false;
  cv_.notify_all();
  cv_.wait(lk, [run] { return run->runnable; });
  run->phase = JobRun::Phase::kRunning;
}

void JobManager::ResumeHook(JobState* job) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = by_state_.find(job);
  if (it == by_state_.end()) return;
  JobRun* run = it->second;
  if (run->phase == JobRun::Phase::kFinished) return;
  run->runnable = true;
  cv_.notify_all();
  cv_.wait(lk, [run] { return !run->runnable; });
}

// ---- Admission -------------------------------------------------------------

bool JobManager::CanAdmit(const JobRun& run, size_t running_count,
                          std::string* deny_reason) const {
  if (options_.max_concurrent > 0 &&
      running_count >= static_cast<size_t>(options_.max_concurrent)) {
    *deny_reason = "concurrency";
    return false;
  }
  if (run.spec.mem_demand_bytes > 0 &&
      run.spec.mem_demand_bytes >
          ctx_->memory_manager().AdmissionHeadroomBytes()) {
    *deny_reason = "memory";
    return false;
  }
  return true;
}

void JobManager::Admit(JobRun* run) {
  const double now = ctx_->now();
  run->admit = now;
  run->state.job_seq = next_job_seq_++;
  run->state.label = run->spec.label;
  run->state.weight = run->spec.weight > 0 ? run->spec.weight : 1.0;
  run->state.cooperative = true;
  run->state.trace = &run->trace;
  run->trace.set_query_id(run->spec.query_id);
  ctx_->memory_manager().ReserveAdmission(run->spec.mem_demand_bytes);
  ctx_->metrics().OnJobAdmitted(now - run->arrival);
  {
    std::lock_guard<std::mutex> lk(mu_);
    by_state_[&run->state] = run;
  }
  ResumeUntilBlocked(run);
}

JobOutcome JobManager::Reap(JobRun* run) {
  if (run->thread.joinable()) run->thread.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    by_state_.erase(&run->state);
  }
  ctx_->memory_manager().ReleaseAdmission(run->spec.mem_demand_bytes);
  ctx_->metrics().OnJobFinished(run->result.ok(), run->finish - run->admit);
  JobOutcome out;
  out.label = run->spec.label;
  out.query_id = run->spec.query_id;
  out.session = run->spec.session;
  out.status = run->result;
  out.queued = run->queued;
  out.arrival_vtime = run->arrival;
  out.admit_vtime = run->admit;
  out.finish_vtime = run->finish;
  if (run->host_timed) {
    out.host_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - run->host_start)
                           .count();
  }
  if (options_.collect_query_metrics) {
    // Driver thread, event-loop order: the virtual quantities are
    // deterministic; host latency (streaming only) feeds a histogram that
    // batch-mode expositions never see.
    ctx_->metrics().OnQueryComplete(run->spec.session, run->result.ok(),
                                    run->finish - run->arrival,
                                    run->admit - run->arrival,
                                    out.host_seconds);
  }
  return out;
}

bool JobManager::AdmitAndReap(std::deque<JobRun*>* queue,
                              std::deque<JobRun*>* arrivals,
                              std::vector<JobRun*>* running,
                              const std::function<void(JobRun*)>& on_done) {
  bool progressed = false;
  // Reap first: finished jobs free admission headroom for the queue.
  for (auto it = running->begin(); it != running->end();) {
    JobRun* run = *it;
    bool done;
    {
      std::lock_guard<std::mutex> lk(mu_);
      done = run->phase == JobRun::Phase::kFinished;
    }
    if (done) {
      it = running->erase(it);
      on_done(run);
      progressed = true;
    } else {
      ++it;
    }
  }
  // Queued jobs go strictly before newer arrivals (FIFO); the queue head is
  // force-admitted when nothing runs, so admission can never deadlock.
  for (;;) {
    std::string reason;
    if (!queue->empty()) {
      JobRun* run = queue->front();
      if (CanAdmit(*run, running->size(), &reason) || running->empty()) {
        queue->pop_front();
        Admit(run);
        running->push_back(run);
        progressed = true;
        continue;
      }
    }
    if (!arrivals->empty()) {
      JobRun* run = arrivals->front();
      arrivals->pop_front();
      std::string why;
      if (queue->empty() &&
          (CanAdmit(*run, running->size(), &why) || running->empty())) {
        Admit(run);
        running->push_back(run);
      } else {
        // Admissible on its own merits but behind queued jobs: that is a
        // concurrency deferral, not a memory one.
        if (why.empty()) why = "concurrency";
        run->queued = true;
        ctx_->metrics().OnJobQueued(why);
        queue->push_back(run);
      }
      progressed = true;
      continue;
    }
    break;
  }
  ctx_->metrics().SetJobsRunning(static_cast<int64_t>(running->size()));
  ctx_->metrics().SetJobsQueued(static_cast<int64_t>(queue->size()));
  return progressed;
}

// ---- Batch mode ------------------------------------------------------------

std::vector<JobOutcome> JobManager::RunJobs(std::vector<JobSpec> specs) {
  SHARK_CHECK(!started_);  // batch and streaming modes are exclusive
  const size_t n = specs.size();
  std::vector<std::unique_ptr<JobRun>> owned;
  owned.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto run = std::make_unique<JobRun>();
    run->spec = std::move(specs[i]);
    run->ticket = i;
    run->arrival = std::max(run->spec.arrival_vtime, ctx_->now());
    owned.push_back(std::move(run));
  }
  std::vector<JobRun*> order;
  order.reserve(n);
  for (auto& run : owned) order.push_back(run.get());
  std::stable_sort(order.begin(), order.end(),
                   [](const JobRun* a, const JobRun* b) {
                     return a->arrival < b->arrival;
                   });

  size_t next_arrival = 0;
  std::deque<JobRun*> queue;
  std::deque<JobRun*> arrivals;
  std::vector<JobRun*> running;
  std::vector<JobOutcome> outcomes(n);
  size_t finished = 0;

  while (finished < n) {
    while (next_arrival < n && order[next_arrival]->arrival <= ctx_->now()) {
      arrivals.push_back(order[next_arrival++]);
    }
    if (AdmitAndReap(&queue, &arrivals, &running, [&](JobRun* run) {
          outcomes[run->ticket] = Reap(run);
          ++finished;
        })) {
      continue;
    }
    const double limit = next_arrival < n ? order[next_arrival]->arrival : kInf;
    Result<DagScheduler::DriveResult> step = ctx_->scheduler().DriveOnce(limit);
    SHARK_CHECK(step.ok());  // scheduling errors fail individual sets
    switch (step.value()) {
      case DagScheduler::DriveResult::kProcessed:
        break;
      case DagScheduler::DriveResult::kDeferred:
      case DagScheduler::DriveResult::kIdle:
        // The next event (if any) lies beyond the next arrival, or nothing
        // is in flight: advance the open-loop clock to that arrival. An
        // unfinished job always implies a future arrival here — running
        // jobs are parked on active sets, and an unadmittable queue head
        // would have been force-admitted above.
        SHARK_CHECK(next_arrival < n);
        ctx_->AdvanceTo(order[next_arrival]->arrival);
        break;
    }
  }
  return outcomes;
}

// ---- Streaming mode --------------------------------------------------------

void JobManager::Start() {
  SHARK_CHECK(!started_);
  started_ = true;
  stop_requested_ = false;
  driver_ = std::thread([this] { StreamLoop(); });
}

uint64_t JobManager::Submit(JobSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  auto run = std::make_unique<JobRun>();
  run->ticket = next_ticket_++;
  run->spec = std::move(spec);
  run->host_timed = true;
  run->host_start = std::chrono::steady_clock::now();
  const uint64_t ticket = run->ticket;
  inbox_.push_back(std::move(run));
  cv_.notify_all();
  return ticket;
}

JobOutcome JobManager::Await(uint64_t ticket) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_outcomes_.count(ticket) > 0; });
  auto it = done_outcomes_.find(ticket);
  JobOutcome out = std::move(it->second);
  done_outcomes_.erase(it);
  return out;
}

void JobManager::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
    cv_.notify_all();
  }
  if (driver_.joinable()) driver_.join();
  started_ = false;
  // Any inspection that raced the shutdown runs here: the engine is
  // quiescent once the driver has joined.
  std::deque<InspectReq*> leftovers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    leftovers.swap(inspects_);
  }
  for (InspectReq* req : leftovers) {
    (*req->fn)();
    std::lock_guard<std::mutex> lk(mu_);
    req->done = true;
    cv_.notify_all();
  }
}

void JobManager::Inspect(const std::function<void()>& fn) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (started_) {
      InspectReq req{&fn, false};
      inspects_.push_back(&req);
      cv_.notify_all();
      cv_.wait(lk, [&req] { return req.done; });
      return;
    }
  }
  // Batch / idle mode: no driver thread owns the engine, the caller does.
  fn();
}

void JobManager::StreamLoop() {
  std::vector<std::unique_ptr<JobRun>> owned;
  std::deque<JobRun*> queue;
  std::deque<JobRun*> arrivals;
  std::vector<JobRun*> running;
  for (;;) {
    std::deque<InspectReq*> inspections;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] {
        return !inbox_.empty() || !running.empty() || !queue.empty() ||
               !arrivals.empty() || !inspects_.empty() || stop_requested_;
      });
      while (!inbox_.empty()) {
        owned.push_back(std::move(inbox_.front()));
        inbox_.pop_front();
        JobRun* run = owned.back().get();
        // Streaming arrivals are stamped with the clock at dequeue; the
        // driver holds the baton here, so the read is race-free.
        run->arrival = ctx_->now();
        arrivals.push_back(run);
      }
      inspections.swap(inspects_);
      if (stop_requested_ && inspections.empty() && arrivals.empty() &&
          queue.empty() && running.empty()) {
        break;  // fully drained
      }
    }
    // Inspections run with the baton held by this thread and every job
    // thread parked, so they can read any engine state race-free.
    for (InspectReq* req : inspections) {
      (*req->fn)();
      std::lock_guard<std::mutex> lk(mu_);
      req->done = true;
      cv_.notify_all();
    }
    const bool progressed =
        AdmitAndReap(&queue, &arrivals, &running, [&](JobRun* run) {
          const uint64_t ticket = run->ticket;
          JobOutcome out = Reap(run);
          owned.erase(std::find_if(owned.begin(), owned.end(),
                                   [run](const std::unique_ptr<JobRun>& p) {
                                     return p.get() == run;
                                   }));
          std::lock_guard<std::mutex> lk(mu_);
          done_outcomes_[ticket] = std::move(out);
          cv_.notify_all();
        });
    if (progressed) continue;
    if (running.empty()) continue;  // idle: back to waiting for submissions
    Result<DagScheduler::DriveResult> step = ctx_->scheduler().DriveOnce(kInf);
    SHARK_CHECK(step.ok());
    // kDeferred cannot happen with an infinite limit; kIdle is a transient
    // right after the last running job finishes (reaped on the next pass).
  }
}

}  // namespace shark
