#include "rdd/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <exception>
#include <limits>
#include <numeric>
#include <set>
#include <string>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "mem/memory_manager.h"
#include "rdd/context.h"

namespace shark {

namespace {

constexpr int kMaxTaskRetries = 64;
constexpr double kInf = std::numeric_limits<double>::infinity();

enum class TaskState { kPending, kRunning, kCommitted };

}  // namespace

Result<std::vector<BlockData>> DagScheduler::RunJob(
    const std::shared_ptr<RddBase>& rdd) {
  std::vector<int> parts(static_cast<size_t>(rdd->num_partitions()));
  std::iota(parts.begin(), parts.end(), 0);
  return RunJobOnPartitions(rdd, parts);
}

Result<std::vector<BlockData>> DagScheduler::RunJobOnPartitions(
    const std::shared_ptr<RddBase>& rdd, const std::vector<int>& partitions) {
  JobMetrics metrics;
  metrics.start_time = ctx_->now();

  Status st = EnsureAncestorShuffles(rdd, &metrics);
  if (!st.ok()) return st;

  std::vector<BlockData> results(partitions.size());
  std::vector<int> result_nodes(partitions.size(), -1);

  std::vector<int> task_ids(partitions.size());
  std::iota(task_ids.begin(), task_ids.end(), 0);

  auto preferred = [&](int i) {
    return rdd->PreferredNodes(partitions[static_cast<size_t>(i)]);
  };
  auto body = [&](int i, TaskContext* tctx) {
    TaskOutcome o;
    o.block = rdd->GetOrComputeErased(partitions[static_cast<size_t>(i)], tctx);
    if (o.block != nullptr) o.rows_out = rdd->BlockRows(o.block);
    return o;
  };
  auto commit = [&](int i, TaskOutcome&& o, int node) {
    results[static_cast<size_t>(i)] = std::move(o.block);
    result_nodes[static_cast<size_t>(i)] = node;
  };
  auto lost = [](int) { return std::vector<int>{}; };  // driver holds results

  if (!partitions.empty()) {
    metrics.stages += 1;
    st = ExecuteTaskSet(task_ids, preferred, body, commit, lost, &metrics,
                        StageInfo{rdd->label(), false, -1});
    if (!st.ok()) return st;
  }

  metrics.end_time = ctx_->now();
  metrics.result_nodes = std::move(result_nodes);
  last_job_ = std::move(metrics);
  return results;
}

Result<ShuffleStats> DagScheduler::EnsureShuffle(
    const std::shared_ptr<ShuffleDependency>& dep) {
  JobMetrics metrics;
  metrics.start_time = ctx_->now();
  ShuffleManager& sm = ctx_->shuffle_manager();
  if (!sm.IsComplete(dep->shuffle_id())) {
    SHARK_RETURN_NOT_OK(EnsureAncestorShuffles(dep->parent(), &metrics));
    SHARK_RETURN_NOT_OK(RunMapTasks(
        dep, sm.MissingMapPartitions(dep->shuffle_id()), &metrics));
  } else {
    shuffle_registry_[dep->shuffle_id()] = dep;
  }
  metrics.end_time = ctx_->now();
  last_job_ = std::move(metrics);
  return sm.Stats(dep->shuffle_id());
}

Status DagScheduler::EnsureAncestorShuffles(const std::shared_ptr<RddBase>& rdd,
                                            JobMetrics* metrics) {
  std::set<int> visited;
  std::function<Status(const std::shared_ptr<RddBase>&)> walk =
      [&](const std::shared_ptr<RddBase>& r) -> Status {
    if (!visited.insert(r->id()).second) return Status::OK();
    for (const Dependency& d : r->dependencies()) {
      if (d.narrow_parent != nullptr) {
        SHARK_RETURN_NOT_OK(walk(d.narrow_parent));
      }
      if (d.shuffle != nullptr) {
        shuffle_registry_[d.shuffle->shuffle_id()] = d.shuffle;
        ShuffleManager& sm = ctx_->shuffle_manager();
        if (!sm.IsComplete(d.shuffle->shuffle_id())) {
          SHARK_RETURN_NOT_OK(walk(d.shuffle->parent()));
          SHARK_RETURN_NOT_OK(RunMapTasks(
              d.shuffle, sm.MissingMapPartitions(d.shuffle->shuffle_id()),
              metrics));
        }
      }
    }
    return Status::OK();
  };
  return walk(rdd);
}

Status DagScheduler::RunMapTasks(const std::shared_ptr<ShuffleDependency>& dep,
                                 const std::vector<int>& map_partitions,
                                 JobMetrics* metrics) {
  if (map_partitions.empty()) return Status::OK();
  shuffle_registry_[dep->shuffle_id()] = dep;
  ShuffleManager& sm = ctx_->shuffle_manager();
  const int shuffle_id = dep->shuffle_id();

  std::vector<int> task_ids(map_partitions.size());
  std::iota(task_ids.begin(), task_ids.end(), 0);

  auto preferred = [&](int i) {
    return dep->parent()->PreferredNodes(map_partitions[static_cast<size_t>(i)]);
  };
  auto body = [&](int i, TaskContext* tctx) {
    int p = map_partitions[static_cast<size_t>(i)];
    TaskOutcome o;
    BlockData parent_block = dep->parent()->GetOrComputeErased(p, tctx);
    o.map_output = dep->PartitionBlock(parent_block, tctx);
    for (uint64_t r : o.map_output.bucket_records) o.rows_out += r;
    for (uint64_t b : o.map_output.bucket_bytes) o.bytes_out += b;
    return o;
  };
  auto commit = [&](int i, TaskOutcome&& o, int node) {
    int p = map_partitions[static_cast<size_t>(i)];
    o.map_output.node = node;
    if (!sm.StatsRecorded(shuffle_id, p)) {
      ShuffleStats* stats = sm.MutableStats(shuffle_id);
      for (const BlockData& b : o.map_output.buckets) {
        dep->CollectKeyStats(b, &stats->heavy_hitters, &stats->key_histogram);
      }
    }
    sm.PutMapOutput(shuffle_id, p, std::move(o.map_output));
  };
  auto lost = [&](int /*node*/) {
    // After a node death, any of this set's committed outputs that the
    // ShuffleManager now reports absent must be recomputed. (Never-computed
    // partitions also read absent; the caller filters to committed tasks.)
    std::vector<int> out;
    for (size_t i = 0; i < map_partitions.size(); ++i) {
      if (sm.GetMapOutput(shuffle_id, map_partitions[i]) == nullptr) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  };

  metrics->stages += 1;
  SHARK_RETURN_NOT_OK(ExecuteTaskSet(
      task_ids, preferred, body, commit, lost, metrics,
      StageInfo{"shuffleMap:" + dep->parent()->label(), true, shuffle_id}));
  // Annotate the finished map stage with the bucket-size distribution the
  // master observed (post log-encoding) — the PDE skew signal.
  TraceCollector& tc = ctx_->trace_collector();
  if (tc.active() && tc.last_ended_stage() >= 0) {
    StageTrace* st = tc.stage(tc.last_ended_stage());
    if (st != nullptr && st->shuffle_id == shuffle_id) {
      st->shuffle = SummarizeBucketBytes(sm.Stats(shuffle_id).bucket_bytes);
    }
  }
  // Same signal into the metrics layer's skew report for this stage. The
  // last report is this stage's: nested recovery stages close before the
  // outer ExecuteTaskSet pushes its own.
  StageSkewReport* report = ctx_->metrics().last_stage_report();
  if (report != nullptr &&
      report->label == "shuffleMap:" + dep->parent()->label()) {
    AnnotateBucketSkew(sm.Stats(shuffle_id).bucket_bytes, report);
  }
  return Status::OK();
}

Status DagScheduler::RecoverMissing(
    const std::vector<std::pair<int, int>>& missing, JobMetrics* metrics) {
  // Group lost map outputs by shuffle, skipping any already recovered by a
  // concurrent task's recovery.
  std::map<int, std::set<int>> by_shuffle;
  ShuffleManager& sm = ctx_->shuffle_manager();
  for (const auto& [shuffle_id, map_part] : missing) {
    if (sm.GetMapOutput(shuffle_id, map_part) == nullptr) {
      by_shuffle[shuffle_id].insert(map_part);
    }
  }
  for (const auto& [shuffle_id, parts] : by_shuffle) {
    auto it = shuffle_registry_.find(shuffle_id);
    if (it == shuffle_registry_.end()) {
      return Status::Internal("unknown shuffle in recovery");
    }
    std::shared_ptr<ShuffleDependency> dep = it->second.lock();
    if (dep == nullptr) {
      return Status::Internal("shuffle dependency expired during recovery");
    }
    std::vector<int> vec(parts.begin(), parts.end());
    metrics->map_tasks_recovered += static_cast<int>(vec.size());
    ctx_->metrics().OnMapTasksRecovered(static_cast<int>(vec.size()));
    SHARK_RETURN_NOT_OK(RunMapTasks(dep, vec, metrics));
  }
  return Status::OK();
}

void DagScheduler::HandleNodeDeath(int node) {
  ctx_->block_manager().DropNode(node);
  ctx_->shuffle_manager().DropNode(node);
  ctx_->broadcasts().DropNode(node);
}

Status DagScheduler::ExecuteTaskSet(
    const std::vector<int>& partitions,
    const std::function<std::vector<int>(int)>& preferred, const TaskBody& body,
    const CommitFn& commit, const LostOutputFn& lost_outputs,
    JobMetrics* metrics, const StageInfo& info) {
  const size_t n = partitions.size();
  if (n == 0) return Status::OK();

  Cluster& cluster = ctx_->cluster();
  const ClusterConfig& cfg = ctx_->config();
  const EngineProfile& profile = ctx_->profile();
  const double hb = profile.heartbeat_interval_sec;
  const uint64_t stage_seq = next_stage_seq_++;
  MemoryManager& mm = ctx_->memory_manager();
  ClusterMetrics& cm = ctx_->metrics();
  // The per-task working-set budget is latched here and re-latched only at
  // epoch bumps (after the worker drain), so concurrently computed task
  // bodies all see one frozen value — shuffle commits move the node ledgers
  // mid-epoch, and reading them live would make spill decisions depend on
  // host-thread timing.
  uint64_t task_mem_budget = mm.TaskWorkingSetBudget();

  struct Inflight {
    int task;
    int node;
    int core;
    double start;
    double finish;
    TaskOutcome outcome;
    bool speculative;
    int trace = -1;  // index into the stage trace's task list
  };

  std::vector<TaskState> state(n, TaskState::kPending);
  std::vector<int> retries(n, 0);
  std::vector<char> has_duplicate(n, 0);
  std::deque<int> pending;
  for (size_t i = 0; i < n; ++i) pending.push_back(static_cast<int>(i));
  std::vector<Inflight> inflight;
  std::vector<double> committed_durations;
  // Parallel to committed_durations: partition and node of each commit, the
  // raw material of the per-stage skew/straggler report.
  std::vector<int> committed_partitions;
  std::vector<int> committed_nodes;
  int stage_speculative = 0;
  int stage_failed = 0;
  size_t committed = 0;
  const double stage_start = ctx_->now();
  double stage_end = stage_start;
  cm.Sample(stage_start, cluster, static_cast<int>(pending.size()),
            static_cast<int>(inflight.size()), /*force=*/true);

  // ---- Query-profile recording --------------------------------------------
  //
  // All recording happens here in the single-threaded event loop and captures
  // only virtual-time observables, so profiles are byte-identical across
  // host_threads settings. When no profile is active every hook is a no-op.
  TraceCollector& tc = ctx_->trace_collector();
  const bool tracing = tc.active();
  const int stage_tid =
      tracing ? tc.BeginStage(info.label, info.is_map_stage, info.shuffle_id,
                              stage_start)
              : -1;
  // Fetched fresh on every use: nested recovery stages can grow the stage
  // vector and invalidate pointers.
  auto strace = [&]() { return tc.stage(stage_tid); };
  std::vector<double> queued_at(n, stage_start);
  auto event = [&](double t, const std::string& text) {
    if (!tracing) return;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t=%.6f ", t);
    strace()->events.push_back(buf + text);
  };

  // ---- Host-parallel task computation -------------------------------------
  //
  // Task bodies are pure functions of (partition, shared state frozen at
  // stage start, per-task rng seed), so they can be computed on worker
  // threads ahead of virtual-time placement. The event loop below stays
  // single-threaded and consumes precomputed outcomes at launch, resolving
  // everything placement-dependent there; simulated timings are therefore
  // bit-for-bit identical regardless of host interleaving (or host_threads).
  //
  // The frozen-state epoch advances whenever shared state mutates mid-set
  // (node death, lineage recovery, cache-log flush). Outcomes computed under
  // an older epoch are discarded and recomputed inline at launch — the same
  // lazy path the serial (host_threads=1) reference oracle always takes.
  struct TaskSlot {
    TaskOutcome outcome;
    std::exception_ptr error;
    long epoch = -1;  // epoch the outcome reflects; -1 = not yet computed
    size_t batch_index = 0;
    bool submitted = false;
  };
  std::vector<TaskSlot> slots(n);
  long epoch = 0;
  // Cache accesses of committed tasks, in commit order, awaiting replay.
  std::vector<CacheOp> replay_log;

  auto compute_slot = [&](int task, long at_epoch) {
    TaskSlot& slot = slots[static_cast<size_t>(task)];
    slot.error = nullptr;
    try {
      TaskContext tctx(partitions[static_cast<size_t>(task)], &profile,
                       &ctx_->block_manager(), &ctx_->shuffle_manager(),
                       &ctx_->broadcasts(), ctx_->virtual_scale(),
                       HashCombine(HashCombine(HashInt64(static_cast<int64_t>(
                                                   cfg.seed)),
                                               HashInt64(static_cast<int64_t>(
                                                   stage_seq))),
                                   HashInt64(task)),
                       task_mem_budget);
      TaskOutcome o = body(task, &tctx);
      o.work = tctx.work();
      o.missing_inputs.assign(tctx.missing_inputs().begin(),
                              tctx.missing_inputs().end());
      o.charges = tctx.TakeDeferredCharges();
      o.broadcast_fetches = tctx.TakeBroadcastFetches();
      o.cache_log = tctx.TakeCacheLog();
      o.cache_counters = tctx.TakeCacheCounters();
      o.mem_log = tctx.TakeMemLog();
      o.spill_bytes = tctx.spill_bytes();
      o.spill_partitions = tctx.spill_partitions();
      slot.outcome = std::move(o);
    } catch (...) {
      slot.error = std::current_exception();
    }
    slot.epoch = at_epoch;
  };

  // Declared after `slots`/`compute_slot`: the batch destructor drains
  // workers before anything they write into goes away.
  ThreadPool* pool = ctx_->thread_pool();
  TaskBatch batch(pool);
  if (pool != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      int task = static_cast<int>(i);
      slots[i].batch_index =
          batch.Submit([&compute_slot, task] { compute_slot(task, 0); });
      slots[i].submitted = true;
    }
  }

  // Applies committed tasks' cache accesses to the shared BlockManager, in
  // commit order. Must run before any mutation of the cache (node death) and
  // only while no worker is reading it (after a batch drain / at set end).
  auto flush_replay = [&]() {
    BlockManager& bm = ctx_->block_manager();
    for (CacheOp& op : replay_log) {
      if (op.is_put) {
        bm.Put(op.rdd_id, op.partition, std::move(op.data), op.bytes, op.node);
      } else {
        bm.Touch(op.rdd_id, op.partition);
      }
    }
    replay_log.clear();
  };

  // Shared state is about to change: stop the presses. Cancels/awaits any
  // outstanding precomputation, applies pending cache effects, and advances
  // the epoch so remaining precomputed outcomes are recomputed at launch.
  auto bump_epoch = [&]() {
    batch.CancelAndDrain();
    flush_replay();
    epoch += 1;
    // Workers are drained; re-latch the working-set budget against the
    // post-flush cache and shuffle ledgers for this epoch's recomputations.
    task_mem_budget = mm.TaskWorkingSetBudget();
  };

  // Produces `task`'s outcome: the precomputed one if still current, else
  // computed inline right now (serial mode, or stale after an epoch bump).
  // Copies out so a speculative duplicate can consume it again.
  auto obtain = [&](int task, TaskOutcome* out) -> Status {
    TaskSlot& slot = slots[static_cast<size_t>(task)];
    if (slot.submitted) batch.Wait(slot.batch_index);
    if (slot.epoch != epoch) compute_slot(task, epoch);
    if (slot.error != nullptr) {
      try {
        std::rethrow_exception(slot.error);
      } catch (const std::exception& e) {
        return Status::ExecutionError(std::string("task body threw: ") +
                                      e.what());
      } catch (...) {
        return Status::ExecutionError("task body threw");
      }
    }
    *out = slot.outcome;
    return Status::OK();
  };

  // Launches `task` on (node, core) available at `avail`; appends Inflight.
  auto launch = [&](int task, int node, int core, double avail,
                    bool speculative) -> Status {
    double start_exec = avail;
    if (hb > 0.0) {
      // Tasks start on heartbeat ticks, at most tasks_per_heartbeat new
      // tasks per node per tick (Hadoop's assignment model, §7).
      long tick = static_cast<long>(std::ceil(avail / hb - 1e-9));
      while (heartbeat_slots_[{node, tick}] >= cfg.tasks_per_heartbeat) ++tick;
      heartbeat_slots_[{node, tick}] += 1;
      start_exec = static_cast<double>(tick) * hb;
    }
    TaskOutcome outcome;
    SHARK_RETURN_NOT_OK(obtain(task, &outcome));
    // Per-node memory-based-shuffle decision (§5, per output instead of the
    // global knob): if this map task's buckets would not fit next to what is
    // already resident on the node, serve them from local disk instead —
    // paying serialization plus the disk write here, and the disk-read path
    // on the reduce side. Decided in the single-threaded event loop at
    // launch, so it is deterministic; the winning attempt's flag commits.
    if (info.is_map_stage && !outcome.map_output.on_disk &&
        outcome.bytes_out > 0 && !mm.ShuffleFits(node, outcome.bytes_out)) {
      outcome.map_output.on_disk = true;
      outcome.work.ser_bytes += outcome.bytes_out;
      outcome.work.disk_write_bytes += outcome.bytes_out;
      cm.OnMapOutputDiskServe(outcome.bytes_out);
      event(avail, "map output of task " + std::to_string(task) + " (" +
                       FormatBytes(outcome.bytes_out) + ") served from disk" +
                       " on node " + std::to_string(node) +
                       " (shuffle buffers over memory budget)");
    }
    if (outcome.spill_bytes > 0) {
      event(avail, "task " + std::to_string(task) + " spilled " +
                       FormatBytes(outcome.spill_bytes) + " in " +
                       std::to_string(outcome.spill_partitions) +
                       " partitions (working set over budget)");
    }
    // Placement-dependent costs resolve now that the node is known: the
    // body's conditional reads, and the one-time per-node broadcast fetches
    // (consulted and updated in deterministic launch order).
    ResolveDeferredCharges(outcome.charges, node, &outcome.work);
    for (int id : outcome.broadcast_fetches) {
      outcome.work.net_read_bytes += ctx_->broadcasts().ChargeFetch(id, node);
    }
    metrics->total_work.Add(outcome.work);

    double work_sec = ctx_->cost_model().WorkSeconds(outcome.work, profile,
                                                     ctx_->virtual_scale());
    double finish = start_exec + profile.task_launch_overhead_sec +
                    work_sec * cluster.slowdown(node);
    cluster.OccupyCore(node, core, finish);
    // Locality classification (0=preferred, 1=remote, 2=any) feeds both the
    // metrics layer and, when active, the query profile.
    std::vector<int> prefs = preferred(task);
    int locality = 2;
    if (!prefs.empty()) {
      locality = 1;
      for (int p : prefs) {
        if (p == node) locality = 0;
      }
    }
    cm.OnTaskLaunch(locality, speculative, outcome.work, work_sec);
    if (speculative) stage_speculative += 1;
    int trace_idx = -1;
    if (tracing) {
      TaskTrace tt;
      tt.task = task;
      tt.partition = partitions[static_cast<size_t>(task)];
      tt.attempt = retries[static_cast<size_t>(task)];
      tt.speculative = speculative;
      tt.node = node;
      tt.core = core;
      tt.queue_time = queued_at[static_cast<size_t>(task)];
      tt.launch_time = avail;
      tt.run_start = start_exec;
      tt.finish_time = finish;
      tt.rows_out = outcome.rows_out;
      tt.bytes_out = outcome.bytes_out;
      tt.work = outcome.work;  // placement-resolved counters
      tt.spill_bytes = outcome.spill_bytes;
      tt.spill_partitions = outcome.spill_partitions;
      tt.output_on_disk = outcome.map_output.on_disk;
      tt.locality = locality == 0 ? TaskLocality::kPreferred
                    : locality == 1 ? TaskLocality::kRemote
                                    : TaskLocality::kAny;
      StageTrace* st = strace();
      trace_idx = static_cast<int>(st->tasks.size());
      st->tasks.push_back(std::move(tt));
    }
    inflight.push_back(Inflight{task, node, core, start_exec, finish,
                                std::move(outcome), speculative, trace_idx});
    if (!speculative) state[static_cast<size_t>(task)] = TaskState::kRunning;
    metrics->tasks_launched += 1;
    if (speculative) metrics->speculative_tasks += 1;
    cm.Sample(start_exec, cluster, static_cast<int>(pending.size()),
              static_cast<int>(inflight.size()), /*force=*/false);
    return Status::OK();
  };

  auto process_deaths = [&](const std::vector<int>& killed, double at) {
    // Committed cache effects must land before the dead node's blocks are
    // dropped (and workers must stop reading the soon-to-mutate state).
    bump_epoch();
    for (int node : killed) {
      HandleNodeDeath(node);
      cm.OnNodeDeath();
      event(at, "node " + std::to_string(node) + " died");
      // Abort in-flight tasks on the dead node.
      for (size_t i = 0; i < inflight.size();) {
        if (inflight[i].node == node) {
          int task = inflight[i].task;
          if (tracing && inflight[i].trace >= 0) {
            TaskTrace& tt =
                strace()->tasks[static_cast<size_t>(inflight[i].trace)];
            tt.end = TaskEnd::kNodeDeath;
            tt.finish_time = at;
          }
          inflight.erase(inflight.begin() + static_cast<long>(i));
          metrics->tasks_failed += 1;
          cm.OnTaskFailed();
          stage_failed += 1;
          // Requeue unless a duplicate still runs or it already committed.
          bool still_running = false;
          for (const Inflight& f : inflight) {
            if (f.task == task) still_running = true;
          }
          if (state[static_cast<size_t>(task)] != TaskState::kCommitted &&
              !still_running) {
            state[static_cast<size_t>(task)] = TaskState::kPending;
            retries[static_cast<size_t>(task)] += 1;
            pending.push_back(task);
            queued_at[static_cast<size_t>(task)] = at;
          }
        } else {
          ++i;
        }
      }
      // Requeue committed tasks whose outputs died with the node.
      for (int t : lost_outputs(node)) {
        if (state[static_cast<size_t>(t)] == TaskState::kCommitted) {
          state[static_cast<size_t>(t)] = TaskState::kPending;
          retries[static_cast<size_t>(t)] += 1;
          pending.push_back(t);
          queued_at[static_cast<size_t>(t)] = at;
          committed -= 1;
          event(at, "output of task " + std::to_string(t) +
                        " lost with node " + std::to_string(node) +
                        "; requeued");
        }
      }
    }
    // The dead nodes' cache blocks and shuffle buffers are gone; re-latch
    // the working-set budget against the surviving residency.
    task_mem_budget = mm.TaskWorkingSetBudget();
    cm.Sample(at, cluster, static_cast<int>(pending.size()),
              static_cast<int>(inflight.size()), /*force=*/true);
  };

  while (committed < n) {
    double assign_t = kInf;
    int free_node = -1;
    int free_core = -1;
    bool have_core =
        cluster.EarliestFreeCore(stage_start, &assign_t, &free_node, &free_core);
    if (!have_core) return Status::ExecutionError("all cluster nodes failed");

    double next_completion = kInf;
    size_t completion_idx = 0;
    for (size_t i = 0; i < inflight.size(); ++i) {
      if (inflight[i].finish < next_completion) {
        next_completion = inflight[i].finish;
        completion_idx = i;
      }
    }

    // Prefer assignment when a core frees up before the next completion.
    if (!pending.empty() && assign_t <= next_completion) {
      std::vector<int> killed = cluster.ApplyFaultsUpTo(assign_t);
      if (!killed.empty()) {
        process_deaths(killed, assign_t);
        continue;
      }
      // Delay scheduling (Zaharia et al., used by Spark): place a task on
      // one of its preferred nodes if a core there frees up within the
      // locality wait, even if some other node has an earlier free core —
      // cached partitions and DFS replicas are then read locally. Falls
      // back to the oldest pending task on the globally earliest core.
      constexpr size_t kLocalityScanLimit = 256;
      size_t pick = 0;
      int pick_node = free_node;
      int pick_core = free_core;
      double pick_time = assign_t;
      double best_local = assign_t + cfg.locality_wait_sec + 1e-12;
      bool found_local = false;
      size_t scan = std::min(pending.size(), kLocalityScanLimit);
      for (size_t i = 0; i < scan; ++i) {
        for (int node : preferred(pending[i])) {
          if (node < 0 || node >= cluster.num_nodes() || !cluster.alive(node)) {
            continue;
          }
          int core = 0;
          double avail =
              std::max(stage_start, cluster.EarliestFreeCoreOnNode(node, &core));
          if (avail < best_local) {
            best_local = avail;
            pick = i;
            pick_node = node;
            pick_core = core;
            pick_time = avail;
            found_local = true;
          }
        }
        // A preferred core already free now cannot be beaten; stop early.
        if (found_local && best_local <= assign_t + 1e-12) break;
      }
      if (!found_local) pick_time = assign_t;
      int task = pending[pick];
      pending.erase(pending.begin() + static_cast<long>(pick));
      if (retries[static_cast<size_t>(task)] > kMaxTaskRetries) {
        return Status::ExecutionError("task exceeded retry limit");
      }
      SHARK_RETURN_NOT_OK(launch(task, pick_node, pick_core, pick_time, false));
      continue;
    }

    // Straggler mitigation (§2.3): with no pending work but cores idle,
    // duplicate the slowest running task if it lags well behind typical
    // committed durations.
    if (pending.empty() && cfg.speculation && assign_t < next_completion &&
        committed_durations.size() >= 3) {
      std::vector<double> durs = committed_durations;
      std::nth_element(durs.begin(), durs.begin() + static_cast<long>(durs.size() / 2),
                       durs.end());
      double median = durs[durs.size() / 2];
      int candidate = -1;
      double worst_remaining = cfg.speculation_multiplier * median;
      for (const Inflight& f : inflight) {
        if (f.speculative || has_duplicate[static_cast<size_t>(f.task)]) continue;
        double remaining = f.finish - assign_t;
        if (remaining > worst_remaining) {
          worst_remaining = remaining;
          candidate = f.task;
        }
      }
      if (candidate >= 0) {
        has_duplicate[static_cast<size_t>(candidate)] = 1;
        event(assign_t,
              "speculative duplicate of task " + std::to_string(candidate));
        SHARK_RETURN_NOT_OK(
            launch(candidate, free_node, free_core, assign_t, true));
        continue;
      }
    }

    if (inflight.empty()) {
      return Status::Internal("scheduler stalled with no runnable tasks");
    }

    // Handle the earliest completion (applying any earlier faults first).
    double t = next_completion;
    std::vector<int> killed = cluster.ApplyFaultsUpTo(t);
    if (!killed.empty()) {
      process_deaths(killed, t);
      continue;
    }
    Inflight done = std::move(inflight[completion_idx]);
    inflight.erase(inflight.begin() + static_cast<long>(completion_idx));

    if (state[static_cast<size_t>(done.task)] == TaskState::kCommitted) {
      // A speculative duplicate already won.
      if (tracing && done.trace >= 0) {
        strace()->tasks[static_cast<size_t>(done.trace)].end =
            TaskEnd::kSuperseded;
      }
      continue;
    }
    if (!done.outcome.missing_inputs.empty()) {
      // Shuffle inputs were lost: recompute them from lineage, then re-run.
      metrics->tasks_rerun_missing += 1;
      cm.OnTaskMissingInput();
      retries[static_cast<size_t>(done.task)] += 1;
      if (retries[static_cast<size_t>(done.task)] > kMaxTaskRetries) {
        return Status::ExecutionError("task exceeded retry limit (recovery)");
      }
      if (tracing && done.trace >= 0) {
        strace()->tasks[static_cast<size_t>(done.trace)].end =
            TaskEnd::kMissingInput;
      }
      event(t, "task " + std::to_string(done.task) +
                   " hit missing shuffle input; lineage recovery of " +
                   std::to_string(done.outcome.missing_inputs.size()) +
                   " map outputs");
      // The recovery sub-stage mutates shuffle state and the cache; quiesce
      // precomputation and apply pending cache effects first.
      bump_epoch();
      SHARK_RETURN_NOT_OK(RecoverMissing(done.outcome.missing_inputs, metrics));
      epoch += 1;  // recovery refreshed shared state
      task_mem_budget = mm.TaskWorkingSetBudget();
      state[static_cast<size_t>(done.task)] = TaskState::kPending;
      pending.push_back(done.task);
      // Recovery advanced the virtual clock; the re-run queues from there.
      queued_at[static_cast<size_t>(done.task)] = ctx_->now();
      continue;
    }
    // The winning launch's cache accesses take effect (at the next flush) in
    // commit order, attributed to the node the task actually ran on.
    for (CacheOp& op : done.outcome.cache_log) {
      op.node = done.node;
      replay_log.push_back(std::move(op));
    }
    done.outcome.cache_log.clear();
    // Replay the winning attempt's reservation log in commit order — the
    // MemoryManager's peak/denial/spill accounting evolves exactly as if
    // committed tasks ran one after another. The metrics counters take the
    // committed deltas, so they agree with the manager's own totals.
    uint64_t denied_before = mm.denied_reservations();
    uint64_t spill_bytes_before = mm.committed_spill_bytes();
    uint64_t spill_parts_before = mm.committed_spill_partitions();
    mm.CommitTaskOps(done.node, done.outcome.mem_log);
    done.outcome.mem_log.clear();
    if (mm.denied_reservations() > denied_before) {
      cm.OnReservationDenied(mm.denied_reservations() - denied_before);
    }
    if (mm.committed_spill_bytes() > spill_bytes_before) {
      cm.OnSpill(mm.committed_spill_bytes() - spill_bytes_before,
                 static_cast<uint32_t>(mm.committed_spill_partitions() -
                                       spill_parts_before));
    }
    // Cache traffic is counted from the committed attempt's replayed
    // counters, never from worker-thread reads — commit order is fixed, so
    // the totals are deterministic under host parallelism.
    uint64_t hit_blocks = 0, hit_bytes = 0, miss_blocks = 0, miss_bytes = 0;
    for (const auto& [rdd, counters] : done.outcome.cache_counters) {
      hit_blocks += counters.hit_blocks;
      hit_bytes += counters.hit_bytes;
      miss_blocks += counters.miss_blocks;
      miss_bytes += counters.miss_bytes;
    }
    if (hit_blocks + miss_blocks > 0) {
      cm.OnCacheTraffic(hit_blocks, hit_bytes, miss_blocks, miss_bytes);
    }
    if (tracing) {
      StageTrace* st = strace();
      for (const auto& [rdd, counters] : done.outcome.cache_counters) {
        st->cache_by_rdd[rdd].Add(counters);
      }
    }
    commit(done.task, std::move(done.outcome), done.node);
    state[static_cast<size_t>(done.task)] = TaskState::kCommitted;
    committed += 1;
    stage_end = std::max(stage_end, done.finish);
    committed_durations.push_back(done.finish - done.start);
    committed_partitions.push_back(partitions[static_cast<size_t>(done.task)]);
    committed_nodes.push_back(done.node);
    cm.OnTaskCommitted(done.finish - done.start);
    cm.Sample(t, cluster, static_cast<int>(pending.size()),
              static_cast<int>(inflight.size()), /*force=*/false);
  }

  // Anything still in flight is a losing speculative duplicate (the loop
  // only exits once every task committed) — its output is abandoned.
  if (tracing) {
    for (const Inflight& f : inflight) {
      if (f.trace >= 0) {
        strace()->tasks[static_cast<size_t>(f.trace)].end =
            TaskEnd::kSuperseded;
      }
    }
  }
  batch.CancelAndDrain();
  flush_replay();
  ctx_->AdvanceTo(stage_end);
  cm.Sample(stage_end, cluster, 0, 0, /*force=*/true);
  const StageSkewReport* skew = cm.OnStageEnd(
      info.label, stage_start, stage_end, committed_durations,
      committed_partitions, committed_nodes, stage_speculative, stage_failed);
  SHARK_LOG(kDebug) << "stage " << skew->seq << " [" << info.label << "] t="
                    << stage_start << ".." << stage_end << " tasks="
                    << skew->tasks << " dur_skew=" << skew->dur_skew
                    << " straggler p" << skew->straggler_partition << "@n"
                    << skew->straggler_node;
  if (tracing) tc.EndStage(stage_tid, stage_end);
  return Status::OK();
}

}  // namespace shark
