#include "rdd/scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "rdd/context.h"

namespace shark {

namespace {

constexpr int kMaxTaskRetries = 64;
constexpr double kInf = std::numeric_limits<double>::infinity();

enum class TaskState { kPending, kRunning, kCommitted };

}  // namespace

Result<std::vector<BlockData>> DagScheduler::RunJob(
    const std::shared_ptr<RddBase>& rdd) {
  std::vector<int> parts(static_cast<size_t>(rdd->num_partitions()));
  std::iota(parts.begin(), parts.end(), 0);
  return RunJobOnPartitions(rdd, parts);
}

Result<std::vector<BlockData>> DagScheduler::RunJobOnPartitions(
    const std::shared_ptr<RddBase>& rdd, const std::vector<int>& partitions) {
  JobMetrics metrics;
  metrics.start_time = ctx_->now();

  Status st = EnsureAncestorShuffles(rdd, &metrics);
  if (!st.ok()) return st;

  std::vector<BlockData> results(partitions.size());
  std::vector<int> result_nodes(partitions.size(), -1);

  std::vector<int> task_ids(partitions.size());
  std::iota(task_ids.begin(), task_ids.end(), 0);

  auto preferred = [&](int i) {
    return rdd->PreferredNodes(partitions[static_cast<size_t>(i)]);
  };
  auto body = [&](int i, TaskContext* tctx) {
    TaskOutcome o;
    o.block = rdd->GetOrComputeErased(partitions[static_cast<size_t>(i)], tctx);
    return o;
  };
  auto commit = [&](int i, TaskOutcome&& o, int node) {
    results[static_cast<size_t>(i)] = std::move(o.block);
    result_nodes[static_cast<size_t>(i)] = node;
  };
  auto lost = [](int) { return std::vector<int>{}; };  // driver holds results

  if (!partitions.empty()) {
    metrics.stages += 1;
    st = ExecuteTaskSet(task_ids, preferred, body, commit, lost, &metrics);
    if (!st.ok()) return st;
  }

  metrics.end_time = ctx_->now();
  metrics.result_nodes = std::move(result_nodes);
  last_job_ = std::move(metrics);
  return results;
}

Result<ShuffleStats> DagScheduler::EnsureShuffle(
    const std::shared_ptr<ShuffleDependency>& dep) {
  JobMetrics metrics;
  metrics.start_time = ctx_->now();
  ShuffleManager& sm = ctx_->shuffle_manager();
  if (!sm.IsComplete(dep->shuffle_id())) {
    SHARK_RETURN_NOT_OK(EnsureAncestorShuffles(dep->parent(), &metrics));
    SHARK_RETURN_NOT_OK(RunMapTasks(
        dep, sm.MissingMapPartitions(dep->shuffle_id()), &metrics));
  } else {
    shuffle_registry_[dep->shuffle_id()] = dep;
  }
  metrics.end_time = ctx_->now();
  last_job_ = std::move(metrics);
  return sm.Stats(dep->shuffle_id());
}

Status DagScheduler::EnsureAncestorShuffles(const std::shared_ptr<RddBase>& rdd,
                                            JobMetrics* metrics) {
  std::set<int> visited;
  std::function<Status(const std::shared_ptr<RddBase>&)> walk =
      [&](const std::shared_ptr<RddBase>& r) -> Status {
    if (!visited.insert(r->id()).second) return Status::OK();
    for (const Dependency& d : r->dependencies()) {
      if (d.narrow_parent != nullptr) {
        SHARK_RETURN_NOT_OK(walk(d.narrow_parent));
      }
      if (d.shuffle != nullptr) {
        shuffle_registry_[d.shuffle->shuffle_id()] = d.shuffle;
        ShuffleManager& sm = ctx_->shuffle_manager();
        if (!sm.IsComplete(d.shuffle->shuffle_id())) {
          SHARK_RETURN_NOT_OK(walk(d.shuffle->parent()));
          SHARK_RETURN_NOT_OK(RunMapTasks(
              d.shuffle, sm.MissingMapPartitions(d.shuffle->shuffle_id()),
              metrics));
        }
      }
    }
    return Status::OK();
  };
  return walk(rdd);
}

Status DagScheduler::RunMapTasks(const std::shared_ptr<ShuffleDependency>& dep,
                                 const std::vector<int>& map_partitions,
                                 JobMetrics* metrics) {
  if (map_partitions.empty()) return Status::OK();
  shuffle_registry_[dep->shuffle_id()] = dep;
  ShuffleManager& sm = ctx_->shuffle_manager();
  const int shuffle_id = dep->shuffle_id();

  std::vector<int> task_ids(map_partitions.size());
  std::iota(task_ids.begin(), task_ids.end(), 0);

  auto preferred = [&](int i) {
    return dep->parent()->PreferredNodes(map_partitions[static_cast<size_t>(i)]);
  };
  auto body = [&](int i, TaskContext* tctx) {
    int p = map_partitions[static_cast<size_t>(i)];
    TaskOutcome o;
    BlockData parent_block = dep->parent()->GetOrComputeErased(p, tctx);
    o.map_output = dep->PartitionBlock(parent_block, tctx);
    return o;
  };
  auto commit = [&](int i, TaskOutcome&& o, int node) {
    int p = map_partitions[static_cast<size_t>(i)];
    o.map_output.node = node;
    if (!sm.StatsRecorded(shuffle_id, p)) {
      ShuffleStats* stats = sm.MutableStats(shuffle_id);
      for (const BlockData& b : o.map_output.buckets) {
        dep->CollectKeyStats(b, &stats->heavy_hitters, &stats->key_histogram);
      }
    }
    sm.PutMapOutput(shuffle_id, p, std::move(o.map_output));
  };
  auto lost = [&](int /*node*/) {
    // After a node death, any of this set's committed outputs that the
    // ShuffleManager now reports lost must be recomputed.
    std::vector<int> out;
    for (size_t i = 0; i < map_partitions.size(); ++i) {
      const MapOutput* mo = sm.GetMapOutput(shuffle_id, map_partitions[i]);
      if (mo != nullptr && !mo->present) out.push_back(static_cast<int>(i));
    }
    return out;
  };

  metrics->stages += 1;
  return ExecuteTaskSet(task_ids, preferred, body, commit, lost, metrics);
}

Status DagScheduler::RecoverMissing(
    const std::vector<std::pair<int, int>>& missing, JobMetrics* metrics) {
  // Group lost map outputs by shuffle, skipping any already recovered by a
  // concurrent task's recovery.
  std::map<int, std::set<int>> by_shuffle;
  ShuffleManager& sm = ctx_->shuffle_manager();
  for (const auto& [shuffle_id, map_part] : missing) {
    const MapOutput* mo = sm.GetMapOutput(shuffle_id, map_part);
    if (mo == nullptr || !mo->present) by_shuffle[shuffle_id].insert(map_part);
  }
  for (const auto& [shuffle_id, parts] : by_shuffle) {
    auto it = shuffle_registry_.find(shuffle_id);
    if (it == shuffle_registry_.end()) {
      return Status::Internal("unknown shuffle in recovery");
    }
    std::shared_ptr<ShuffleDependency> dep = it->second.lock();
    if (dep == nullptr) {
      return Status::Internal("shuffle dependency expired during recovery");
    }
    std::vector<int> vec(parts.begin(), parts.end());
    metrics->map_tasks_recovered += static_cast<int>(vec.size());
    SHARK_RETURN_NOT_OK(RunMapTasks(dep, vec, metrics));
  }
  return Status::OK();
}

void DagScheduler::HandleNodeDeath(int node) {
  ctx_->block_manager().DropNode(node);
  ctx_->shuffle_manager().DropNode(node);
  ctx_->broadcasts().DropNode(node);
}

Status DagScheduler::ExecuteTaskSet(
    const std::vector<int>& partitions,
    const std::function<std::vector<int>(int)>& preferred, const TaskBody& body,
    const CommitFn& commit, const LostOutputFn& lost_outputs,
    JobMetrics* metrics) {
  const size_t n = partitions.size();
  if (n == 0) return Status::OK();

  Cluster& cluster = ctx_->cluster();
  const ClusterConfig& cfg = ctx_->config();
  const EngineProfile& profile = ctx_->profile();
  const double hb = profile.heartbeat_interval_sec;

  struct Inflight {
    int task;
    int node;
    int core;
    double start;
    double finish;
    TaskOutcome outcome;
    bool speculative;
  };

  std::vector<TaskState> state(n, TaskState::kPending);
  std::vector<int> retries(n, 0);
  std::vector<char> has_duplicate(n, 0);
  std::deque<int> pending;
  for (size_t i = 0; i < n; ++i) pending.push_back(static_cast<int>(i));
  std::vector<Inflight> inflight;
  std::vector<double> committed_durations;
  size_t committed = 0;
  const double stage_start = ctx_->now();
  double stage_end = stage_start;

  // Launches `task` on (node, core) available at `avail`; appends Inflight.
  auto launch = [&](int task, int node, int core, double avail,
                    bool speculative) -> Status {
    double start_exec = avail;
    if (hb > 0.0) {
      // Tasks start on heartbeat ticks, at most tasks_per_heartbeat new
      // tasks per node per tick (Hadoop's assignment model, §7).
      long tick = static_cast<long>(std::ceil(avail / hb - 1e-9));
      while (heartbeat_slots_[{node, tick}] >= cfg.tasks_per_heartbeat) ++tick;
      heartbeat_slots_[{node, tick}] += 1;
      start_exec = static_cast<double>(tick) * hb;
    }
    TaskContext tctx(node, partitions[static_cast<size_t>(task)], &profile,
                     &ctx_->block_manager(), &ctx_->shuffle_manager(),
                     &ctx_->broadcasts(), ctx_->virtual_scale());
    TaskOutcome outcome = body(task, &tctx);
    outcome.work = tctx.work();
    outcome.missing_inputs.assign(tctx.missing_inputs().begin(),
                                  tctx.missing_inputs().end());
    metrics->total_work.Add(outcome.work);

    double work_sec = ctx_->cost_model().WorkSeconds(outcome.work, profile,
                                                     ctx_->virtual_scale());
    double finish = start_exec + profile.task_launch_overhead_sec +
                    work_sec * cluster.slowdown(node);
    cluster.OccupyCore(node, core, finish);
    inflight.push_back(Inflight{task, node, core, start_exec, finish,
                                std::move(outcome), speculative});
    if (!speculative) state[static_cast<size_t>(task)] = TaskState::kRunning;
    metrics->tasks_launched += 1;
    if (speculative) metrics->speculative_tasks += 1;
    return Status::OK();
  };

  auto process_deaths = [&](const std::vector<int>& killed) {
    for (int node : killed) {
      HandleNodeDeath(node);
      // Abort in-flight tasks on the dead node.
      for (size_t i = 0; i < inflight.size();) {
        if (inflight[i].node == node) {
          int task = inflight[i].task;
          inflight.erase(inflight.begin() + static_cast<long>(i));
          metrics->tasks_failed += 1;
          // Requeue unless a duplicate still runs or it already committed.
          bool still_running = false;
          for (const Inflight& f : inflight) {
            if (f.task == task) still_running = true;
          }
          if (state[static_cast<size_t>(task)] != TaskState::kCommitted &&
              !still_running) {
            state[static_cast<size_t>(task)] = TaskState::kPending;
            retries[static_cast<size_t>(task)] += 1;
            pending.push_back(task);
          }
        } else {
          ++i;
        }
      }
      // Requeue committed tasks whose outputs died with the node.
      for (int t : lost_outputs(node)) {
        if (state[static_cast<size_t>(t)] == TaskState::kCommitted) {
          state[static_cast<size_t>(t)] = TaskState::kPending;
          retries[static_cast<size_t>(t)] += 1;
          pending.push_back(t);
          committed -= 1;
        }
      }
    }
  };

  while (committed < n) {
    double assign_t = kInf;
    int free_node = -1;
    int free_core = -1;
    bool have_core =
        cluster.EarliestFreeCore(stage_start, &assign_t, &free_node, &free_core);
    if (!have_core) return Status::ExecutionError("all cluster nodes failed");

    double next_completion = kInf;
    size_t completion_idx = 0;
    for (size_t i = 0; i < inflight.size(); ++i) {
      if (inflight[i].finish < next_completion) {
        next_completion = inflight[i].finish;
        completion_idx = i;
      }
    }

    // Prefer assignment when a core frees up before the next completion.
    if (!pending.empty() && assign_t <= next_completion) {
      std::vector<int> killed = cluster.ApplyFaultsUpTo(assign_t);
      if (!killed.empty()) {
        process_deaths(killed);
        continue;
      }
      // Delay scheduling (Zaharia et al., used by Spark): place a task on
      // one of its preferred nodes if a core there frees up within the
      // locality wait, even if some other node has an earlier free core —
      // cached partitions and DFS replicas are then read locally. Falls
      // back to the oldest pending task on the globally earliest core.
      constexpr size_t kLocalityScanLimit = 256;
      size_t pick = 0;
      int pick_node = free_node;
      int pick_core = free_core;
      double pick_time = assign_t;
      double best_local = assign_t + cfg.locality_wait_sec + 1e-12;
      bool found_local = false;
      size_t scan = std::min(pending.size(), kLocalityScanLimit);
      for (size_t i = 0; i < scan; ++i) {
        for (int node : preferred(pending[i])) {
          if (node < 0 || node >= cluster.num_nodes() || !cluster.alive(node)) {
            continue;
          }
          int core = 0;
          double avail =
              std::max(stage_start, cluster.EarliestFreeCoreOnNode(node, &core));
          if (avail < best_local) {
            best_local = avail;
            pick = i;
            pick_node = node;
            pick_core = core;
            pick_time = avail;
            found_local = true;
          }
        }
        // A preferred core already free now cannot be beaten; stop early.
        if (found_local && best_local <= assign_t + 1e-12) break;
      }
      if (!found_local) pick_time = assign_t;
      int task = pending[pick];
      pending.erase(pending.begin() + static_cast<long>(pick));
      if (retries[static_cast<size_t>(task)] > kMaxTaskRetries) {
        return Status::ExecutionError("task exceeded retry limit");
      }
      SHARK_RETURN_NOT_OK(launch(task, pick_node, pick_core, pick_time, false));
      continue;
    }

    // Straggler mitigation (§2.3): with no pending work but cores idle,
    // duplicate the slowest running task if it lags well behind typical
    // committed durations.
    if (pending.empty() && cfg.speculation && assign_t < next_completion &&
        committed_durations.size() >= 3) {
      std::vector<double> durs = committed_durations;
      std::nth_element(durs.begin(), durs.begin() + static_cast<long>(durs.size() / 2),
                       durs.end());
      double median = durs[durs.size() / 2];
      int candidate = -1;
      double worst_remaining = cfg.speculation_multiplier * median;
      for (const Inflight& f : inflight) {
        if (f.speculative || has_duplicate[static_cast<size_t>(f.task)]) continue;
        double remaining = f.finish - assign_t;
        if (remaining > worst_remaining) {
          worst_remaining = remaining;
          candidate = f.task;
        }
      }
      if (candidate >= 0) {
        has_duplicate[static_cast<size_t>(candidate)] = 1;
        SHARK_RETURN_NOT_OK(
            launch(candidate, free_node, free_core, assign_t, true));
        continue;
      }
    }

    if (inflight.empty()) {
      return Status::Internal("scheduler stalled with no runnable tasks");
    }

    // Handle the earliest completion (applying any earlier faults first).
    double t = next_completion;
    std::vector<int> killed = cluster.ApplyFaultsUpTo(t);
    if (!killed.empty()) {
      process_deaths(killed);
      continue;
    }
    Inflight done = std::move(inflight[completion_idx]);
    inflight.erase(inflight.begin() + static_cast<long>(completion_idx));

    if (state[static_cast<size_t>(done.task)] == TaskState::kCommitted) {
      continue;  // a speculative duplicate already won
    }
    if (!done.outcome.missing_inputs.empty()) {
      // Shuffle inputs were lost: recompute them from lineage, then re-run.
      metrics->tasks_rerun_missing += 1;
      retries[static_cast<size_t>(done.task)] += 1;
      if (retries[static_cast<size_t>(done.task)] > kMaxTaskRetries) {
        return Status::ExecutionError("task exceeded retry limit (recovery)");
      }
      SHARK_RETURN_NOT_OK(RecoverMissing(done.outcome.missing_inputs, metrics));
      state[static_cast<size_t>(done.task)] = TaskState::kPending;
      pending.push_back(done.task);
      continue;
    }
    commit(done.task, std::move(done.outcome), done.node);
    state[static_cast<size_t>(done.task)] = TaskState::kCommitted;
    committed += 1;
    stage_end = std::max(stage_end, done.finish);
    committed_durations.push_back(done.finish - done.start);
  }

  ctx_->AdvanceTo(stage_end);
  return Status::OK();
}

}  // namespace shark
