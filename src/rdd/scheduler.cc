#include "rdd/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <exception>
#include <limits>
#include <numeric>
#include <set>
#include <string>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "mem/memory_manager.h"
#include "rdd/context.h"

namespace shark {

namespace {

constexpr int kMaxTaskRetries = 64;
constexpr double kInf = std::numeric_limits<double>::infinity();

thread_local JobState* g_current_job = nullptr;

}  // namespace

JobState* CurrentJobState() { return g_current_job; }
void SetCurrentJobState(JobState* job) { g_current_job = job; }

/// One registered task set: everything ExecuteTaskSet used to keep on its
/// stack, so several sets can be in flight in the shared event loop at once.
/// Lives on the registering thread's stack (plain callers and nested
/// recovery drive the loop from that frame; cooperative jobs park in it).
struct TaskSetState {
  enum class TaskState { kPending, kRunning, kCommitted };

  struct Inflight {
    int task;
    int node;
    int core;
    double start;
    double finish;
    DagScheduler::TaskOutcome outcome;
    bool speculative;
    int trace = -1;  // index into the stage trace's task list
  };

  /// Host-parallel precomputation slot. Task bodies are pure functions of
  /// (partition, shared state frozen at the current epoch, per-task rng
  /// seed), so they can be computed on worker threads ahead of virtual-time
  /// placement; outcomes computed under an older epoch are discarded and
  /// recomputed inline at launch.
  struct TaskSlot {
    DagScheduler::TaskOutcome outcome;
    std::exception_ptr error;
    long epoch = -1;  // epoch the outcome reflects; -1 = not yet computed
    size_t batch_index = 0;
    bool submitted = false;
  };

  // ---- immutable inputs ----
  std::vector<int> partitions;
  std::function<std::vector<int>(int)> preferred;
  DagScheduler::TaskBody body;
  DagScheduler::CommitFn commit;
  DagScheduler::LostOutputFn lost_outputs;
  JobMetrics* metrics = nullptr;
  DagScheduler::StageInfo info;
  JobState* job = nullptr;
  TraceCollector* collector = nullptr;

  // ---- scheduling state ----
  size_t n = 0;
  uint64_t stage_seq = 0;
  std::vector<TaskState> state;
  std::vector<int> retries;
  std::vector<char> has_duplicate;
  std::deque<int> pending;
  std::vector<Inflight> inflight;
  std::vector<double> committed_durations;
  // Parallel to committed_durations: partition and node of each commit, the
  // raw material of the per-stage skew/straggler report.
  std::vector<int> committed_partitions;
  std::vector<int> committed_nodes;
  std::vector<double> queued_at;
  int stage_speculative = 0;
  int stage_failed = 0;
  size_t committed = 0;
  double stage_start = 0.0;
  double stage_end = 0.0;

  // ---- profile recording ----
  bool tracing = false;
  int stage_tid = -1;

  // ---- lifecycle ----
  // Suspended while this set's completion processing runs a nested lineage
  // recovery: no launches, deaths or completions touch it until the
  // recovery sub-stages finish (the historical recursive behavior).
  bool suspended = false;
  bool finalized = false;
  Status status = Status::OK();

  // Declared after `slots`: the batch destructor drains workers before
  // anything they write into goes away.
  std::vector<TaskSlot> slots;
  std::unique_ptr<TaskBatch> batch;

  // Fetched fresh on every use: nested recovery stages can grow the stage
  // vector and invalidate pointers.
  StageTrace* strace() { return collector->stage(stage_tid); }

  void Event(double t, const std::string& text) {
    if (!tracing) return;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t=%.6f ", t);
    strace()->events.push_back(buf + text);
  }
};

namespace {

using TaskState = TaskSetState::TaskState;

}  // namespace

DagScheduler::DagScheduler(ClusterContext* ctx) : ctx_(ctx) {
  default_job_.job_seq = 0;
  default_job_.label = "main";
}

DagScheduler::~DagScheduler() = default;

Result<std::vector<BlockData>> DagScheduler::RunJob(
    const std::shared_ptr<RddBase>& rdd) {
  std::vector<int> parts(static_cast<size_t>(rdd->num_partitions()));
  std::iota(parts.begin(), parts.end(), 0);
  return RunJobOnPartitions(rdd, parts);
}

Result<std::vector<BlockData>> DagScheduler::RunJobOnPartitions(
    const std::shared_ptr<RddBase>& rdd, const std::vector<int>& partitions) {
  JobMetrics metrics;
  metrics.start_time = ctx_->now();

  Status st = EnsureAncestorShuffles(rdd, &metrics);
  if (!st.ok()) return st;

  std::vector<BlockData> results(partitions.size());
  std::vector<int> result_nodes(partitions.size(), -1);

  std::vector<int> task_ids(partitions.size());
  std::iota(task_ids.begin(), task_ids.end(), 0);

  auto preferred = [&](int i) {
    return rdd->PreferredNodes(partitions[static_cast<size_t>(i)]);
  };
  auto body = [&](int i, TaskContext* tctx) {
    TaskOutcome o;
    o.block = rdd->GetOrComputeErased(partitions[static_cast<size_t>(i)], tctx);
    if (o.block != nullptr) o.rows_out = rdd->BlockRows(o.block);
    return o;
  };
  auto commit = [&](int i, TaskOutcome&& o, int node) {
    results[static_cast<size_t>(i)] = std::move(o.block);
    result_nodes[static_cast<size_t>(i)] = node;
  };
  auto lost = [](int) { return std::vector<int>{}; };  // driver holds results

  if (!partitions.empty()) {
    metrics.stages += 1;
    st = ExecuteTaskSet(task_ids, preferred, body, commit, lost, &metrics,
                        StageInfo{rdd->label(), false, -1});
    if (!st.ok()) return st;
  }

  metrics.end_time = ctx_->now();
  metrics.result_nodes = std::move(result_nodes);
  last_job_ = std::move(metrics);
  return results;
}

Result<ShuffleStats> DagScheduler::EnsureShuffle(
    const std::shared_ptr<ShuffleDependency>& dep) {
  JobMetrics metrics;
  metrics.start_time = ctx_->now();
  ShuffleManager& sm = ctx_->shuffle_manager();
  if (!sm.IsComplete(dep->shuffle_id())) {
    SHARK_RETURN_NOT_OK(EnsureAncestorShuffles(dep->parent(), &metrics));
    SHARK_RETURN_NOT_OK(RunMapTasks(
        dep, sm.MissingMapPartitions(dep->shuffle_id()), &metrics));
  } else {
    shuffle_registry_[dep->shuffle_id()] = dep;
  }
  metrics.end_time = ctx_->now();
  last_job_ = std::move(metrics);
  return sm.Stats(dep->shuffle_id());
}

Status DagScheduler::EnsureAncestorShuffles(const std::shared_ptr<RddBase>& rdd,
                                            JobMetrics* metrics) {
  std::set<int> visited;
  std::function<Status(const std::shared_ptr<RddBase>&)> walk =
      [&](const std::shared_ptr<RddBase>& r) -> Status {
    if (!visited.insert(r->id()).second) return Status::OK();
    for (const Dependency& d : r->dependencies()) {
      if (d.narrow_parent != nullptr) {
        SHARK_RETURN_NOT_OK(walk(d.narrow_parent));
      }
      if (d.shuffle != nullptr) {
        shuffle_registry_[d.shuffle->shuffle_id()] = d.shuffle;
        ShuffleManager& sm = ctx_->shuffle_manager();
        if (!sm.IsComplete(d.shuffle->shuffle_id())) {
          SHARK_RETURN_NOT_OK(walk(d.shuffle->parent()));
          SHARK_RETURN_NOT_OK(RunMapTasks(
              d.shuffle, sm.MissingMapPartitions(d.shuffle->shuffle_id()),
              metrics));
        }
      }
    }
    return Status::OK();
  };
  return walk(rdd);
}

Status DagScheduler::RunMapTasks(const std::shared_ptr<ShuffleDependency>& dep,
                                 const std::vector<int>& map_partitions,
                                 JobMetrics* metrics) {
  if (map_partitions.empty()) return Status::OK();
  shuffle_registry_[dep->shuffle_id()] = dep;
  ShuffleManager& sm = ctx_->shuffle_manager();
  const int shuffle_id = dep->shuffle_id();

  std::vector<int> task_ids(map_partitions.size());
  std::iota(task_ids.begin(), task_ids.end(), 0);

  auto preferred = [&](int i) {
    return dep->parent()->PreferredNodes(map_partitions[static_cast<size_t>(i)]);
  };
  auto body = [&](int i, TaskContext* tctx) {
    int p = map_partitions[static_cast<size_t>(i)];
    TaskOutcome o;
    BlockData parent_block = dep->parent()->GetOrComputeErased(p, tctx);
    o.map_output = dep->PartitionBlock(parent_block, tctx);
    for (uint64_t r : o.map_output.bucket_records) o.rows_out += r;
    for (uint64_t b : o.map_output.bucket_bytes) o.bytes_out += b;
    return o;
  };
  auto commit = [&](int i, TaskOutcome&& o, int node) {
    int p = map_partitions[static_cast<size_t>(i)];
    o.map_output.node = node;
    if (!sm.StatsRecorded(shuffle_id, p)) {
      ShuffleStats* stats = sm.MutableStats(shuffle_id);
      for (const BlockData& b : o.map_output.buckets) {
        dep->CollectKeyStats(b, &stats->heavy_hitters, &stats->key_histogram);
      }
    }
    sm.PutMapOutput(shuffle_id, p, std::move(o.map_output));
  };
  auto lost = [&](int /*node*/) {
    // After a node death, any of this set's committed outputs that the
    // ShuffleManager now reports absent must be recomputed. (Never-computed
    // partitions also read absent; the caller filters to committed tasks.)
    std::vector<int> out;
    for (size_t i = 0; i < map_partitions.size(); ++i) {
      if (sm.GetMapOutput(shuffle_id, map_partitions[i]) == nullptr) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  };

  metrics->stages += 1;
  SHARK_RETURN_NOT_OK(ExecuteTaskSet(
      task_ids, preferred, body, commit, lost, metrics,
      StageInfo{"shuffleMap:" + dep->parent()->label(), true, shuffle_id}));
  // Annotate the finished map stage with the bucket-size distribution the
  // master observed (post log-encoding) — the PDE skew signal. The stage
  // landed in the owning job's collector (recovery runs on the driving
  // thread, so the thread-local lookup alone is not enough).
  TraceCollector& tc = CollectorForCurrentWork();
  if (tc.active() && tc.last_ended_stage() >= 0) {
    StageTrace* st = tc.stage(tc.last_ended_stage());
    if (st != nullptr && st->shuffle_id == shuffle_id) {
      st->shuffle = SummarizeBucketBytes(sm.Stats(shuffle_id).bucket_bytes);
    }
  }
  // Same signal into the metrics layer's skew report for this stage. The
  // last report is this stage's: a finalized set resumes its owner before
  // the loop processes any further event, and nested recovery stages close
  // before the outer set finalizes.
  StageSkewReport* report = ctx_->metrics().last_stage_report();
  if (report != nullptr &&
      report->label == "shuffleMap:" + dep->parent()->label()) {
    AnnotateBucketSkew(sm.Stats(shuffle_id).bucket_bytes, report);
  }
  return Status::OK();
}

Status DagScheduler::RecoverMissing(
    const std::vector<std::pair<int, int>>& missing, JobMetrics* metrics) {
  // Group lost map outputs by shuffle, skipping any already recovered by a
  // concurrent task's recovery.
  std::map<int, std::set<int>> by_shuffle;
  ShuffleManager& sm = ctx_->shuffle_manager();
  for (const auto& [shuffle_id, map_part] : missing) {
    if (sm.GetMapOutput(shuffle_id, map_part) == nullptr) {
      by_shuffle[shuffle_id].insert(map_part);
    }
  }
  for (const auto& [shuffle_id, parts] : by_shuffle) {
    auto it = shuffle_registry_.find(shuffle_id);
    if (it == shuffle_registry_.end()) {
      return Status::Internal("unknown shuffle in recovery");
    }
    std::shared_ptr<ShuffleDependency> dep = it->second.lock();
    if (dep == nullptr) {
      return Status::Internal("shuffle dependency expired during recovery");
    }
    std::vector<int> vec(parts.begin(), parts.end());
    metrics->map_tasks_recovered += static_cast<int>(vec.size());
    ctx_->metrics().OnMapTasksRecovered(static_cast<int>(vec.size()));
    SHARK_RETURN_NOT_OK(RunMapTasks(dep, vec, metrics));
  }
  return Status::OK();
}

void DagScheduler::HandleNodeDeath(int node) {
  ctx_->block_manager().DropNode(node);
  ctx_->shuffle_manager().DropNode(node);
  ctx_->broadcasts().DropNode(node);
}

JobState* DagScheduler::ResolveJobForRegistration() {
  // A job thread registering its own work wins; the driving thread
  // registering a lineage-recovery sub-stage carries the owning job in
  // override_job_; everything else is the plain single-caller identity.
  if (JobState* j = CurrentJobState()) return j;
  if (override_job_ != nullptr) return override_job_;
  return &default_job_;
}

TraceCollector& DagScheduler::CollectorForCurrentWork() {
  JobState* job = ResolveJobForRegistration();
  if (job->trace != nullptr) return *job->trace;
  return ctx_->trace_collector();
}

bool DagScheduler::FairBefore(const JobState* a, const JobState* b) {
  double ka = a->service_seconds / a->weight;
  double kb = b->service_seconds / b->weight;
  if (ka != kb) return ka < kb;
  return a->job_seq < b->job_seq;
}

int DagScheduler::TotalPending() const {
  int total = 0;
  for (const TaskSetState* s : active_sets_) {
    if (!s->suspended) total += static_cast<int>(s->pending.size());
  }
  return total;
}

int DagScheduler::TotalRunning() const {
  int total = 0;
  for (const TaskSetState* s : active_sets_) {
    if (!s->suspended) total += static_cast<int>(s->inflight.size());
  }
  return total;
}

void DagScheduler::FlushReplay() {
  // Applies committed tasks' cache accesses to the shared BlockManager, in
  // commit order. Must run before any mutation of the cache (node death) and
  // only while no worker is reading it (after a batch drain / at set end).
  BlockManager& bm = ctx_->block_manager();
  for (CacheOp& op : replay_log_) {
    if (op.is_put) {
      bm.Put(op.rdd_id, op.partition, std::move(op.data), op.bytes, op.node);
    } else {
      bm.Touch(op.rdd_id, op.partition);
    }
  }
  replay_log_.clear();
}

void DagScheduler::BumpEpoch() {
  // Shared state is about to change: stop the presses. Cancels/awaits any
  // outstanding precomputation across all active sets, applies pending cache
  // effects, and advances the epoch so remaining precomputed outcomes are
  // recomputed at launch.
  for (TaskSetState* s : active_sets_) {
    if (s->batch != nullptr) s->batch->CancelAndDrain();
  }
  FlushReplay();
  epoch_ += 1;
  // Workers are drained; re-latch the working-set budget against the
  // post-flush cache and shuffle ledgers for this epoch's recomputations.
  task_mem_budget_ = ctx_->memory_manager().TaskWorkingSetBudget();
}

void DagScheduler::QuiesceForSharedStateMutation() {
  if (active_sets_.empty() && replay_log_.empty()) return;
  BumpEpoch();
}

void DagScheduler::ComputeSlot(TaskSetState* set, int task, long at_epoch) {
  TaskSetState::TaskSlot& slot = set->slots[static_cast<size_t>(task)];
  slot.error = nullptr;
  try {
    const ClusterConfig& cfg = ctx_->config();
    TaskContext tctx(set->partitions[static_cast<size_t>(task)],
                     &ctx_->profile(), &ctx_->block_manager(),
                     &ctx_->shuffle_manager(), &ctx_->broadcasts(),
                     ctx_->virtual_scale(),
                     HashCombine(HashCombine(HashInt64(static_cast<int64_t>(
                                                 cfg.seed)),
                                             HashInt64(static_cast<int64_t>(
                                                 set->stage_seq))),
                                 HashInt64(task)),
                     task_mem_budget_);
    TaskOutcome o = set->body(task, &tctx);
    o.work = tctx.work();
    o.missing_inputs.assign(tctx.missing_inputs().begin(),
                            tctx.missing_inputs().end());
    o.charges = tctx.TakeDeferredCharges();
    o.broadcast_fetches = tctx.TakeBroadcastFetches();
    o.cache_log = tctx.TakeCacheLog();
    o.cache_counters = tctx.TakeCacheCounters();
    o.mem_log = tctx.TakeMemLog();
    o.spill_bytes = tctx.spill_bytes();
    o.spill_partitions = tctx.spill_partitions();
    slot.outcome = std::move(o);
  } catch (...) {
    slot.error = std::current_exception();
  }
  slot.epoch = at_epoch;
}

Status DagScheduler::ObtainOutcome(TaskSetState* set, int task,
                                   TaskOutcome* out) {
  // Produces `task`'s outcome: the precomputed one if still current, else
  // computed inline right now (serial mode, or stale after an epoch bump).
  // Copies out so a speculative duplicate can consume it again.
  TaskSetState::TaskSlot& slot = set->slots[static_cast<size_t>(task)];
  if (slot.submitted) set->batch->Wait(slot.batch_index);
  if (slot.epoch != epoch_) ComputeSlot(set, task, epoch_);
  if (slot.error != nullptr) {
    try {
      std::rethrow_exception(slot.error);
    } catch (const std::exception& e) {
      return Status::ExecutionError(std::string("task body threw: ") +
                                    e.what());
    } catch (...) {
      return Status::ExecutionError("task body threw");
    }
  }
  *out = slot.outcome;
  return Status::OK();
}

void DagScheduler::RegisterTaskSet(TaskSetState* set) {
  Cluster& cluster = ctx_->cluster();
  set->n = set->partitions.size();
  set->stage_seq = next_stage_seq_++;
  // With no set in flight there is no frozen epoch to respect: latch the
  // per-task working-set budget fresh, exactly as the one-job scheduler did
  // at stage entry. Sets registered while others run inherit the current
  // epoch's frozen value instead (their task bodies must agree with any
  // already-precomputed outcomes of the same epoch).
  if (active_sets_.empty()) {
    task_mem_budget_ = ctx_->memory_manager().TaskWorkingSetBudget();
  }
  set->job = ResolveJobForRegistration();
  set->state.assign(set->n, TaskState::kPending);
  set->retries.assign(set->n, 0);
  set->has_duplicate.assign(set->n, 0);
  for (size_t i = 0; i < set->n; ++i) set->pending.push_back(static_cast<int>(i));
  set->stage_start = ctx_->now();
  set->stage_end = set->stage_start;
  set->queued_at.assign(set->n, set->stage_start);
  active_sets_.push_back(set);
  ctx_->metrics().Sample(set->stage_start, cluster, TotalPending(),
                         TotalRunning(), /*force=*/true);

  // Query-profile recording: all of it happens in the single-threaded event
  // loop (or on the owning job's thread while it holds the baton) and
  // captures only virtual-time observables, so profiles are byte-identical
  // across host_threads settings. When no profile is active every hook is a
  // no-op.
  set->collector = set->job->trace != nullptr ? set->job->trace
                                              : &ctx_->trace_collector();
  set->tracing = set->collector->active();
  set->stage_tid =
      set->tracing ? set->collector->BeginStage(set->info.label,
                                                set->info.is_map_stage,
                                                set->info.shuffle_id,
                                                set->stage_start)
                   : -1;

  set->slots.assign(set->n, TaskSetState::TaskSlot{});
  ThreadPool* pool = ctx_->thread_pool();
  set->batch = std::make_unique<TaskBatch>(pool);
  if (pool != nullptr) {
    const long at_epoch = epoch_;
    for (size_t i = 0; i < set->n; ++i) {
      int task = static_cast<int>(i);
      set->slots[i].batch_index = set->batch->Submit(
          [this, set, task, at_epoch] { ComputeSlot(set, task, at_epoch); });
      set->slots[i].submitted = true;
    }
  }
}

void DagScheduler::UnregisterTaskSet(TaskSetState* set) {
  active_sets_.erase(std::remove(active_sets_.begin(), active_sets_.end(), set),
                     active_sets_.end());
}

Status DagScheduler::Launch(TaskSetState* set, int task, int node, int core,
                            double avail, bool speculative) {
  Cluster& cluster = ctx_->cluster();
  const ClusterConfig& cfg = ctx_->config();
  const EngineProfile& profile = ctx_->profile();
  ClusterMetrics& cm = ctx_->metrics();
  const double hb = profile.heartbeat_interval_sec;

  double start_exec = avail;
  if (hb > 0.0) {
    // Tasks start on heartbeat ticks, at most tasks_per_heartbeat new
    // tasks per node per tick (Hadoop's assignment model, §7).
    long tick = static_cast<long>(std::ceil(avail / hb - 1e-9));
    while (heartbeat_slots_[{node, tick}] >= cfg.tasks_per_heartbeat) ++tick;
    heartbeat_slots_[{node, tick}] += 1;
    start_exec = static_cast<double>(tick) * hb;
  }
  TaskOutcome outcome;
  SHARK_RETURN_NOT_OK(ObtainOutcome(set, task, &outcome));
  // Per-node memory-based-shuffle decision (§5, per output instead of the
  // global knob): if this map task's buckets would not fit next to what is
  // already resident on the node, serve them from local disk instead —
  // paying serialization plus the disk write here, and the disk-read path
  // on the reduce side. Decided in the single-threaded event loop at
  // launch, so it is deterministic; the winning attempt's flag commits.
  MemoryManager& mm = ctx_->memory_manager();
  if (set->info.is_map_stage && !outcome.map_output.on_disk &&
      outcome.bytes_out > 0 && !mm.ShuffleFits(node, outcome.bytes_out)) {
    outcome.map_output.on_disk = true;
    outcome.work.ser_bytes += outcome.bytes_out;
    outcome.work.disk_write_bytes += outcome.bytes_out;
    cm.OnMapOutputDiskServe(outcome.bytes_out);
    set->Event(avail, "map output of task " + std::to_string(task) + " (" +
                          FormatBytes(outcome.bytes_out) +
                          ") served from disk" + " on node " +
                          std::to_string(node) +
                          " (shuffle buffers over memory budget)");
  }
  if (outcome.spill_bytes > 0) {
    set->Event(avail, "task " + std::to_string(task) + " spilled " +
                          FormatBytes(outcome.spill_bytes) + " in " +
                          std::to_string(outcome.spill_partitions) +
                          " partitions (working set over budget)");
  }
  // Placement-dependent costs resolve now that the node is known: the
  // body's conditional reads, and the one-time per-node broadcast fetches
  // (consulted and updated in deterministic launch order).
  ResolveDeferredCharges(outcome.charges, node, &outcome.work);
  for (int id : outcome.broadcast_fetches) {
    outcome.work.net_read_bytes += ctx_->broadcasts().ChargeFetch(id, node);
  }
  set->metrics->total_work.Add(outcome.work);

  double work_sec = ctx_->cost_model().WorkSeconds(outcome.work, profile,
                                                   ctx_->virtual_scale());
  double finish = start_exec + profile.task_launch_overhead_sec +
                  work_sec * cluster.slowdown(node);
  cluster.OccupyCore(node, core, finish);
  // Core occupancy feeds the weighted fair-share policy: the job that has
  // consumed the least virtual core time per unit weight launches next when
  // several jobs' sets are runnable at the same instant.
  set->job->service_seconds += finish - start_exec;
  // Locality classification (0=preferred, 1=remote, 2=any) feeds both the
  // metrics layer and, when active, the query profile.
  std::vector<int> prefs = set->preferred(task);
  int locality = 2;
  if (!prefs.empty()) {
    locality = 1;
    for (int p : prefs) {
      if (p == node) locality = 0;
    }
  }
  cm.OnTaskLaunch(locality, speculative, outcome.work, work_sec);
  if (speculative) set->stage_speculative += 1;
  int trace_idx = -1;
  if (set->tracing) {
    TaskTrace tt;
    tt.task = task;
    tt.partition = set->partitions[static_cast<size_t>(task)];
    tt.attempt = set->retries[static_cast<size_t>(task)];
    tt.speculative = speculative;
    tt.node = node;
    tt.core = core;
    tt.queue_time = set->queued_at[static_cast<size_t>(task)];
    tt.launch_time = avail;
    tt.run_start = start_exec;
    tt.finish_time = finish;
    tt.rows_out = outcome.rows_out;
    tt.bytes_out = outcome.bytes_out;
    tt.work = outcome.work;  // placement-resolved counters
    tt.spill_bytes = outcome.spill_bytes;
    tt.spill_partitions = outcome.spill_partitions;
    tt.output_on_disk = outcome.map_output.on_disk;
    tt.locality = locality == 0   ? TaskLocality::kPreferred
                  : locality == 1 ? TaskLocality::kRemote
                                  : TaskLocality::kAny;
    StageTrace* st = set->strace();
    trace_idx = static_cast<int>(st->tasks.size());
    st->tasks.push_back(std::move(tt));
  }
  set->inflight.push_back(TaskSetState::Inflight{
      task, node, core, start_exec, finish, std::move(outcome), speculative,
      trace_idx});
  if (!speculative) {
    set->state[static_cast<size_t>(task)] = TaskState::kRunning;
  }
  set->metrics->tasks_launched += 1;
  if (speculative) set->metrics->speculative_tasks += 1;
  cm.Sample(start_exec, cluster, TotalPending(), TotalRunning(),
            /*force=*/false);
  return Status::OK();
}

void DagScheduler::ProcessDeaths(const std::vector<int>& killed, double at) {
  ClusterMetrics& cm = ctx_->metrics();
  // Committed cache effects must land before the dead nodes' blocks are
  // dropped (and workers must stop reading the soon-to-mutate state).
  BumpEpoch();
  for (int node : killed) {
    HandleNodeDeath(node);
    cm.OnNodeDeath();
    // Suspended sets are driven by a nested recovery frame and keep their
    // in-flight tasks, exactly as the recursive scheduler did: the fault
    // schedule was already consumed, so their tasks on the dead node run to
    // completion and their lost outputs surface later as missing inputs.
    std::vector<TaskSetState*> live;
    for (TaskSetState* s : active_sets_) {
      if (!s->suspended) live.push_back(s);
    }
    for (TaskSetState* set : live) {
      set->Event(at, "node " + std::to_string(node) + " died");
      // Abort in-flight tasks on the dead node.
      for (size_t i = 0; i < set->inflight.size();) {
        if (set->inflight[i].node == node) {
          int task = set->inflight[i].task;
          if (set->tracing && set->inflight[i].trace >= 0) {
            TaskTrace& tt =
                set->strace()->tasks[static_cast<size_t>(set->inflight[i].trace)];
            tt.end = TaskEnd::kNodeDeath;
            tt.finish_time = at;
          }
          set->inflight.erase(set->inflight.begin() + static_cast<long>(i));
          set->metrics->tasks_failed += 1;
          cm.OnTaskFailed();
          set->stage_failed += 1;
          // Requeue unless a duplicate still runs or it already committed.
          bool still_running = false;
          for (const TaskSetState::Inflight& f : set->inflight) {
            if (f.task == task) still_running = true;
          }
          if (set->state[static_cast<size_t>(task)] != TaskState::kCommitted &&
              !still_running) {
            set->state[static_cast<size_t>(task)] = TaskState::kPending;
            set->retries[static_cast<size_t>(task)] += 1;
            set->pending.push_back(task);
            set->queued_at[static_cast<size_t>(task)] = at;
          }
        } else {
          ++i;
        }
      }
      // Requeue committed tasks whose outputs died with the node.
      for (int t : set->lost_outputs(node)) {
        if (set->state[static_cast<size_t>(t)] == TaskState::kCommitted) {
          set->state[static_cast<size_t>(t)] = TaskState::kPending;
          set->retries[static_cast<size_t>(t)] += 1;
          set->pending.push_back(t);
          set->queued_at[static_cast<size_t>(t)] = at;
          set->committed -= 1;
          set->Event(at, "output of task " + std::to_string(t) +
                             " lost with node " + std::to_string(node) +
                             "; requeued");
        }
      }
    }
  }
  // The dead nodes' cache blocks and shuffle buffers are gone; re-latch
  // the working-set budget against the surviving residency.
  task_mem_budget_ = ctx_->memory_manager().TaskWorkingSetBudget();
  cm.Sample(at, ctx_->cluster(), TotalPending(), TotalRunning(),
            /*force=*/true);
}

void DagScheduler::FinalizeSet(TaskSetState* set) {
  ClusterMetrics& cm = ctx_->metrics();
  // Anything still in flight is a losing speculative duplicate (a set only
  // finalizes once every task committed) — its output is abandoned. Its
  // core occupancy stands: the cluster really did burn those cores.
  if (set->tracing) {
    for (const TaskSetState::Inflight& f : set->inflight) {
      if (f.trace >= 0) {
        set->strace()->tasks[static_cast<size_t>(f.trace)].end =
            TaskEnd::kSuperseded;
      }
    }
  }
  BumpEpoch();
  UnregisterTaskSet(set);
  ctx_->AdvanceTo(set->stage_end);
  cm.Sample(set->stage_end, ctx_->cluster(), TotalPending(), TotalRunning(),
            /*force=*/true);
  const StageSkewReport* skew = cm.OnStageEnd(
      set->info.label, set->stage_start, set->stage_end,
      set->committed_durations, set->committed_partitions, set->committed_nodes,
      set->stage_speculative, set->stage_failed);
  SHARK_LOG(kDebug) << "stage " << skew->seq << " [" << set->info.label
                    << "] t=" << set->stage_start << ".." << set->stage_end
                    << " tasks=" << skew->tasks << " dur_skew="
                    << skew->dur_skew << " straggler p"
                    << skew->straggler_partition << "@n"
                    << skew->straggler_node;
  if (set->tracing) set->collector->EndStage(set->stage_tid, set->stage_end);
  set->finalized = true;
  // Wake the owner before the loop touches another event, so post-stage
  // reads (last_job_, last_stage_report) still refer to this stage.
  if (set->job->cooperative && coop_hooks_.resume) {
    coop_hooks_.resume(set->job);
  }
}

void DagScheduler::FailSet(TaskSetState* set, const Status& status) {
  if (set->finalized) return;
  set->status = status;
  set->finalized = true;
  UnregisterTaskSet(set);
  if (set->batch != nullptr) set->batch->CancelAndDrain();
  if (set->job->cooperative && coop_hooks_.resume) {
    coop_hooks_.resume(set->job);
  }
}

Status DagScheduler::ProcessCompletion(TaskSetState* set, size_t idx) {
  ClusterMetrics& cm = ctx_->metrics();
  MemoryManager& mm = ctx_->memory_manager();
  const double t = set->inflight[idx].finish;
  TaskSetState::Inflight done = std::move(set->inflight[idx]);
  set->inflight.erase(set->inflight.begin() + static_cast<long>(idx));

  if (set->state[static_cast<size_t>(done.task)] == TaskState::kCommitted) {
    // A speculative duplicate already won.
    if (set->tracing && done.trace >= 0) {
      set->strace()->tasks[static_cast<size_t>(done.trace)].end =
          TaskEnd::kSuperseded;
    }
    return Status::OK();
  }
  if (!done.outcome.missing_inputs.empty()) {
    // Shuffle inputs were lost: recompute them from lineage, then re-run.
    set->metrics->tasks_rerun_missing += 1;
    cm.OnTaskMissingInput();
    set->retries[static_cast<size_t>(done.task)] += 1;
    if (set->retries[static_cast<size_t>(done.task)] > kMaxTaskRetries) {
      FailSet(set, Status::ExecutionError("task exceeded retry limit (recovery)"));
      return Status::OK();
    }
    if (set->tracing && done.trace >= 0) {
      set->strace()->tasks[static_cast<size_t>(done.trace)].end =
          TaskEnd::kMissingInput;
    }
    set->Event(t, "task " + std::to_string(done.task) +
                      " hit missing shuffle input; lineage recovery of " +
                      std::to_string(done.outcome.missing_inputs.size()) +
                      " map outputs");
    // The recovery sub-stages mutate shuffle state and the cache: quiesce
    // precomputation, apply pending cache effects, and suspend this set so
    // the nested drive interleaves everyone else's events but not ours —
    // the historical recursive-scheduler behavior, which single-job virtual
    // times depend on.
    BumpEpoch();
    set->suspended = true;
    JobState* prev_override = override_job_;
    override_job_ = set->job;
    Status rst = RecoverMissing(done.outcome.missing_inputs, set->metrics);
    override_job_ = prev_override;
    set->suspended = false;
    if (!rst.ok()) {
      FailSet(set, rst);
      return Status::OK();
    }
    epoch_ += 1;  // recovery refreshed shared state
    task_mem_budget_ = ctx_->memory_manager().TaskWorkingSetBudget();
    set->state[static_cast<size_t>(done.task)] = TaskState::kPending;
    set->pending.push_back(done.task);
    // Recovery advanced the virtual clock; the re-run queues from there.
    set->queued_at[static_cast<size_t>(done.task)] = ctx_->now();
    return Status::OK();
  }
  // The winning launch's cache accesses take effect (at the next flush) in
  // commit order, attributed to the node the task actually ran on.
  for (CacheOp& op : done.outcome.cache_log) {
    op.node = done.node;
    replay_log_.push_back(std::move(op));
  }
  done.outcome.cache_log.clear();
  // Replay the winning attempt's reservation log in commit order — the
  // MemoryManager's peak/denial/spill accounting evolves exactly as if
  // committed tasks ran one after another. The metrics counters take the
  // committed deltas, so they agree with the manager's own totals.
  uint64_t denied_before = mm.denied_reservations();
  uint64_t spill_bytes_before = mm.committed_spill_bytes();
  uint64_t spill_parts_before = mm.committed_spill_partitions();
  mm.CommitTaskOps(done.node, done.outcome.mem_log);
  done.outcome.mem_log.clear();
  if (mm.denied_reservations() > denied_before) {
    cm.OnReservationDenied(mm.denied_reservations() - denied_before);
  }
  if (mm.committed_spill_bytes() > spill_bytes_before) {
    cm.OnSpill(mm.committed_spill_bytes() - spill_bytes_before,
               static_cast<uint32_t>(mm.committed_spill_partitions() -
                                     spill_parts_before));
  }
  // Cache traffic is counted from the committed attempt's replayed
  // counters, never from worker-thread reads — commit order is fixed, so
  // the totals are deterministic under host parallelism.
  uint64_t hit_blocks = 0, hit_bytes = 0, miss_blocks = 0, miss_bytes = 0;
  for (const auto& [rdd, counters] : done.outcome.cache_counters) {
    hit_blocks += counters.hit_blocks;
    hit_bytes += counters.hit_bytes;
    miss_blocks += counters.miss_blocks;
    miss_bytes += counters.miss_bytes;
  }
  if (hit_blocks + miss_blocks > 0) {
    cm.OnCacheTraffic(hit_blocks, hit_bytes, miss_blocks, miss_bytes);
  }
  if (set->tracing) {
    StageTrace* st = set->strace();
    for (const auto& [rdd, counters] : done.outcome.cache_counters) {
      st->cache_by_rdd[rdd].Add(counters);
    }
  }
  set->commit(done.task, std::move(done.outcome), done.node);
  set->state[static_cast<size_t>(done.task)] = TaskState::kCommitted;
  set->committed += 1;
  set->stage_end = std::max(set->stage_end, done.finish);
  set->committed_durations.push_back(done.finish - done.start);
  set->committed_partitions.push_back(
      set->partitions[static_cast<size_t>(done.task)]);
  set->committed_nodes.push_back(done.node);
  cm.OnTaskCommitted(done.finish - done.start);
  cm.Sample(t, ctx_->cluster(), TotalPending(), TotalRunning(),
            /*force=*/false);
  if (set->committed == set->n) FinalizeSet(set);
  return Status::OK();
}

Result<DagScheduler::DriveResult> DagScheduler::StepOnce(double time_limit) {
  Cluster& cluster = ctx_->cluster();
  const ClusterConfig& cfg = ctx_->config();

  std::vector<TaskSetState*> live;
  for (TaskSetState* s : active_sets_) {
    if (!s->suspended) live.push_back(s);
  }
  if (live.empty()) return DriveResult::kIdle;

  // All-nodes-dead probe (any reference time works: the probe only fails
  // when no node is alive).
  {
    double t;
    int node, core;
    if (!cluster.EarliestFreeCore(live.front()->stage_start, &t, &node,
                                  &core)) {
      Status st = Status::ExecutionError("all cluster nodes failed");
      std::vector<TaskSetState*> doomed = live;
      for (TaskSetState* s : doomed) FailSet(s, st);
      return DriveResult::kProcessed;
    }
  }

  // Assignment candidate: the earliest (stage-start-bounded) free core over
  // sets with pending tasks; virtual-time ties go to the job with the least
  // weighted service.
  TaskSetState* aset = nullptr;
  double assign_t = kInf;
  int assign_node = -1;
  int assign_core = -1;
  for (TaskSetState* s : live) {
    if (s->pending.empty()) continue;
    double t;
    int node, core;
    if (!cluster.EarliestFreeCore(s->stage_start, &t, &node, &core)) continue;
    if (aset == nullptr || t < assign_t ||
        (t == assign_t && FairBefore(s->job, aset->job))) {
      aset = s;
      assign_t = t;
      assign_node = node;
      assign_core = core;
    }
  }

  // Earliest completion across all live sets, in registration order.
  TaskSetState* cset = nullptr;
  double next_completion = kInf;
  size_t completion_idx = 0;
  for (TaskSetState* s : live) {
    for (size_t i = 0; i < s->inflight.size(); ++i) {
      if (s->inflight[i].finish < next_completion) {
        next_completion = s->inflight[i].finish;
        cset = s;
        completion_idx = i;
      }
    }
  }

  // Prefer assignment when a core frees up before the next completion.
  if (aset != nullptr && assign_t <= next_completion) {
    if (assign_t > time_limit) return DriveResult::kDeferred;
    std::vector<int> killed = cluster.ApplyFaultsUpTo(assign_t);
    if (!killed.empty()) {
      ProcessDeaths(killed, assign_t);
      return DriveResult::kProcessed;
    }
    // Delay scheduling (Zaharia et al., used by Spark): place a task on
    // one of its preferred nodes if a core there frees up within the
    // locality wait, even if some other node has an earlier free core —
    // cached partitions and DFS replicas are then read locally. Falls
    // back to the oldest pending task on the globally earliest core.
    constexpr size_t kLocalityScanLimit = 256;
    size_t pick = 0;
    int pick_node = assign_node;
    int pick_core = assign_core;
    double pick_time = assign_t;
    double best_local = assign_t + cfg.locality_wait_sec + 1e-12;
    bool found_local = false;
    size_t scan = std::min(aset->pending.size(), kLocalityScanLimit);
    for (size_t i = 0; i < scan; ++i) {
      for (int node : aset->preferred(aset->pending[i])) {
        if (node < 0 || node >= cluster.num_nodes() || !cluster.alive(node)) {
          continue;
        }
        int core = 0;
        double avail = std::max(aset->stage_start,
                                cluster.EarliestFreeCoreOnNode(node, &core));
        if (avail < best_local) {
          best_local = avail;
          pick = i;
          pick_node = node;
          pick_core = core;
          pick_time = avail;
          found_local = true;
        }
      }
      // A preferred core already free now cannot be beaten; stop early.
      if (found_local && best_local <= assign_t + 1e-12) break;
    }
    if (!found_local) pick_time = assign_t;
    int task = aset->pending[pick];
    aset->pending.erase(aset->pending.begin() + static_cast<long>(pick));
    if (aset->retries[static_cast<size_t>(task)] > kMaxTaskRetries) {
      FailSet(aset, Status::ExecutionError("task exceeded retry limit"));
      return DriveResult::kProcessed;
    }
    Status st = Launch(aset, task, pick_node, pick_core, pick_time, false);
    if (!st.ok()) FailSet(aset, st);
    return DriveResult::kProcessed;
  }

  // Straggler mitigation (§2.3): a set with no pending work but idle cores
  // before its next completion duplicates its slowest running task if it
  // lags well behind typical committed durations.
  if (cfg.speculation) {
    TaskSetState* sset = nullptr;
    double spec_t = kInf;
    int spec_node = -1;
    int spec_core = -1;
    int spec_task = -1;
    for (TaskSetState* s : live) {
      if (!s->pending.empty() || s->committed_durations.size() < 3) continue;
      double t;
      int node, core;
      if (!cluster.EarliestFreeCore(s->stage_start, &t, &node, &core)) continue;
      if (!(t < next_completion)) continue;
      if (sset != nullptr &&
          !(t < spec_t || (t == spec_t && FairBefore(s->job, sset->job)))) {
        continue;
      }
      std::vector<double> durs = s->committed_durations;
      std::nth_element(durs.begin(),
                       durs.begin() + static_cast<long>(durs.size() / 2),
                       durs.end());
      double median = durs[durs.size() / 2];
      int candidate = -1;
      double worst_remaining = cfg.speculation_multiplier * median;
      for (const TaskSetState::Inflight& f : s->inflight) {
        if (f.speculative || s->has_duplicate[static_cast<size_t>(f.task)]) {
          continue;
        }
        double remaining = f.finish - t;
        if (remaining > worst_remaining) {
          worst_remaining = remaining;
          candidate = f.task;
        }
      }
      if (candidate >= 0) {
        sset = s;
        spec_t = t;
        spec_node = node;
        spec_core = core;
        spec_task = candidate;
      }
    }
    if (sset != nullptr) {
      if (spec_t > time_limit) return DriveResult::kDeferred;
      sset->has_duplicate[static_cast<size_t>(spec_task)] = 1;
      sset->Event(spec_t,
                  "speculative duplicate of task " + std::to_string(spec_task));
      Status st = Launch(sset, spec_task, spec_node, spec_core, spec_t, true);
      if (!st.ok()) FailSet(sset, st);
      return DriveResult::kProcessed;
    }
  }

  if (cset == nullptr) {
    Status st = Status::Internal("scheduler stalled with no runnable tasks");
    std::vector<TaskSetState*> doomed = live;
    for (TaskSetState* s : doomed) FailSet(s, st);
    return DriveResult::kProcessed;
  }

  // Handle the earliest completion (applying any earlier faults first).
  if (next_completion > time_limit) return DriveResult::kDeferred;
  std::vector<int> killed = cluster.ApplyFaultsUpTo(next_completion);
  if (!killed.empty()) {
    ProcessDeaths(killed, next_completion);
    return DriveResult::kProcessed;
  }
  SHARK_RETURN_NOT_OK(ProcessCompletion(cset, completion_idx));
  return DriveResult::kProcessed;
}

Result<DagScheduler::DriveResult> DagScheduler::DriveOnce(double time_limit) {
  return StepOnce(time_limit);
}

Status DagScheduler::DriveUntilFinalized(TaskSetState* target) {
  while (!target->finalized) {
    Result<DriveResult> r = StepOnce(kInf);
    SHARK_RETURN_NOT_OK(r.status());
    if (r.value() == DriveResult::kIdle) {
      return Status::Internal("event loop idle with an unfinalized task set");
    }
  }
  return Status::OK();
}

Status DagScheduler::ExecuteTaskSet(
    const std::vector<int>& partitions,
    const std::function<std::vector<int>(int)>& preferred, const TaskBody& body,
    const CommitFn& commit, const LostOutputFn& lost_outputs,
    JobMetrics* metrics, const StageInfo& info) {
  if (partitions.empty()) return Status::OK();

  TaskSetState set;
  set.partitions = partitions;
  set.preferred = preferred;
  set.body = body;
  set.commit = commit;
  set.lost_outputs = lost_outputs;
  set.metrics = metrics;
  set.info = info;
  RegisterTaskSet(&set);

  Status drive_status = Status::OK();
  if (set.job->cooperative && coop_hooks_.park && CurrentJobState() != nullptr) {
    // Cooperative job thread: the JobManager driver owns the loop; sleep
    // until it finalizes (or fails) this set.
    coop_hooks_.park(set.job);
  } else {
    drive_status = DriveUntilFinalized(&set);
  }
  if (!set.finalized) UnregisterTaskSet(&set);
  SHARK_RETURN_NOT_OK(drive_status);
  return set.status;
}

}  // namespace shark
