#ifndef SHARK_WORKLOADS_TPCH_H_
#define SHARK_WORKLOADS_TPCH_H_

#include <cstdint>
#include <string>

#include "sql/session.h"

namespace shark {

/// TPC-H-style generator (§6.3): lineitem/supplier/orders subsets with the
/// column cardinalities the micro-benchmarks depend on — a 7-value
/// L_SHIPMODE, ~2500 distinct L_RECEIPTDATE days, and a high-cardinality
/// L_ORDERKEY (rows/4 distinct, ascending — i.e. naturally clustered, which
/// also exercises RLE compression and map pruning).
struct TpchConfig {
  int64_t lineitem_rows = 600000;   // paper 100GB point: 600M rows
  int64_t supplier_rows = 20000;    // paper 1TB point: 10M suppliers
  int64_t orders_rows = 150000;
  int lineitem_blocks = 800;
  int supplier_blocks = 16;
  int orders_blocks = 100;
  uint64_t seed = 42;

  /// Maps the scaled lineitem back to the paper's row count for a given
  /// scale point ("100GB" -> 600M rows, "1TB" -> 6B rows).
  double VirtualScaleFor(double paper_rows) const {
    return paper_rows / static_cast<double>(lineitem_rows);
  }
};

/// Creates DFS tables `lineitem`, `supplier` and `orders`.
Status GenerateTpchTables(SharkSession* session, const TpchConfig& config);

/// Fig 7's group-by sweep: group_column in {"", "L_SHIPMODE",
/// "L_RECEIPTDATE", "L_ORDERKEY"} ("" = plain COUNT(*)).
std::string TpchAggregationQuery(const std::string& group_column);

/// Fig 8's join: lineitem x supplier with a selective UDF on S_ADDRESS.
std::string TpchUdfJoinQuery();

}  // namespace shark

#endif  // SHARK_WORKLOADS_TPCH_H_
