#include "workloads/warehouse.h"

#include "common/random.h"

namespace shark {

namespace {

const char* kPlayers[] = {"flash", "html5", "ios", "android", "roku"};
const char* kOses[] = {"windows", "macos", "linux", "ios", "android"};
const char* kBrowsers[] = {"chrome", "firefox", "safari", "ie", "opera"};
const char* kCdns[] = {"akamai", "level3", "limelight"};

std::string CountryName(int i) { return "country" + std::to_string(i); }

}  // namespace

Status GenerateWarehouseTable(SharkSession* session,
                              const WarehouseConfig& config) {
  Random rng(config.seed);
  Schema schema({{"session_id", TypeKind::kInt64},
                 {"customer_id", TypeKind::kInt64},
                 {"client_id", TypeKind::kInt64},
                 {"datacenter", TypeKind::kInt64},
                 {"country", TypeKind::kString},
                 {"city", TypeKind::kString},
                 {"day", TypeKind::kDate},
                 {"hour", TypeKind::kInt64},
                 {"duration", TypeKind::kInt64},
                 {"buffering_ratio", TypeKind::kDouble},
                 {"bitrate", TypeKind::kInt64},
                 {"startup_ms", TypeKind::kInt64},
                 {"bytes_sent", TypeKind::kInt64},
                 {"bytes_recv", TypeKind::kInt64},
                 {"player", TypeKind::kString},
                 {"os", TypeKind::kString},
                 {"browser", TypeKind::kString},
                 {"cdn", TypeKind::kString},
                 {"content_id", TypeKind::kInt64},
                 {"is_live", TypeKind::kBool},
                 {"error_count", TypeKind::kInt64},
                 {"rebuffers", TypeKind::kInt64},
                 {"avg_fps", TypeKind::kDouble},
                 {"exit_code", TypeKind::kInt64}});

  int64_t day0 = Value::ParseDate("2012-06-01")->int64_v();
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(config.rows));
  // Rows are generated in (datacenter, day) order — logs land in the data
  // center closest to the user and are append-only (§3.5) — giving each
  // storage partition a tight (datacenter, day, country) footprint.
  int64_t per_dc = config.rows / config.num_datacenters;
  int64_t session_id = 0;
  for (int dc = 0; dc < config.num_datacenters; ++dc) {
    // Each datacenter serves a geographic slice of countries.
    int countries_per_dc = config.num_countries / config.num_datacenters;
    int country_base = dc * countries_per_dc;
    for (int64_t i = 0; i < per_dc; ++i) {
      int64_t day = (i * config.days) / std::max<int64_t>(per_dc, 1);
      int country = country_base + static_cast<int>(rng.Uniform(
                                       static_cast<uint64_t>(countries_per_dc)));
      rows.push_back(Row({
          Value::Int64(session_id++),
          Value::Int64(rng.UniformInt(0, config.num_customers - 1)),
          Value::Int64(rng.UniformInt(0, config.rows / 5)),
          Value::Int64(dc),
          Value::String(CountryName(country)),
          Value::String("city" + std::to_string(country * 10 +
                                                 rng.UniformInt(0, 9))),
          Value::Date(day0 + day),
          Value::Int64(rng.UniformInt(0, 23)),
          Value::Int64(rng.UniformInt(5, 7200)),
          Value::Double(static_cast<double>(rng.UniformInt(0, 300)) / 1000.0),
          Value::Int64(rng.UniformInt(200, 6000)),
          Value::Int64(rng.UniformInt(50, 9000)),
          Value::Int64(rng.UniformInt(10000, 50000000)),
          Value::Int64(rng.UniformInt(1000, 1000000)),
          Value::String(kPlayers[rng.Uniform(5)]),
          Value::String(kOses[rng.Uniform(5)]),
          Value::String(kBrowsers[rng.Uniform(5)]),
          Value::String(kCdns[rng.Uniform(3)]),
          Value::Int64(static_cast<int64_t>(rng.Zipf(
              static_cast<uint64_t>(config.num_contents), 1.1))),
          Value::Bool(rng.Bernoulli(0.2)),
          Value::Int64(rng.Bernoulli(0.05) ? rng.UniformInt(1, 5) : 0),
          Value::Int64(rng.Bernoulli(0.3) ? rng.UniformInt(1, 20) : 0),
          Value::Double(20.0 + 40.0 * rng.NextDouble()),
          Value::Int64(rng.UniformInt(0, 3)),
      }));
    }
  }
  return session->CreateDfsTable("sessions", schema, rows, config.blocks);
}

std::string WarehouseQ1(int customer_id, const std::string& day) {
  // 12-dimension summary for one customer on one day.
  return "SELECT COUNT(*), AVG(duration), AVG(buffering_ratio), AVG(bitrate), "
         "AVG(startup_ms), SUM(bytes_sent), SUM(bytes_recv), MAX(duration), "
         "MIN(duration), AVG(rebuffers), AVG(error_count), AVG(avg_fps) "
         "FROM sessions WHERE customer_id = " +
         std::to_string(customer_id) + " AND day = DATE '" + day + "'";
}

std::string WarehouseQ2() {
  // Sessions and distinct customer/client combinations by country, with
  // filter predicates on eight columns.
  return "SELECT country, COUNT(*), COUNT(DISTINCT customer_id, client_id) "
         "FROM sessions WHERE duration > 60 AND buffering_ratio < 0.2 "
         "AND bitrate > 500 AND startup_ms < 5000 AND error_count = 0 "
         "AND is_live = FALSE AND exit_code = 0 AND rebuffers < 10 "
         "GROUP BY country";
}

std::string WarehouseQ3() {
  return "SELECT COUNT(*), COUNT(DISTINCT client_id) FROM sessions "
         "WHERE country NOT IN ('country0', 'country1')";
}

std::string WarehouseQ4() {
  return "SELECT content_id, COUNT(*) AS views, AVG(duration), "
         "AVG(buffering_ratio), AVG(bitrate), AVG(startup_ms), "
         "AVG(rebuffers), AVG(avg_fps) FROM sessions GROUP BY content_id "
         "ORDER BY views DESC LIMIT 10";
}

}  // namespace shark
