#ifndef SHARK_WORKLOADS_WAREHOUSE_H_
#define SHARK_WORKLOADS_WAREHOUSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/session.h"

namespace shark {

/// Generator for the "real Hive warehouse" workload (§6.4): a single wide
/// fact table of video session metrics whose rows arrive datacenter-by-
/// datacenter in roughly chronological order — the natural clustering on
/// (datacenter, day) that map pruning exploits (the paper measures a ~30x
/// scan reduction on these queries).
struct WarehouseConfig {
  int64_t rows = 500000;  // paper: 1.7 TB over 30 days
  int blocks = 800;
  int days = 30;
  int num_customers = 100;
  int num_countries = 24;
  int num_datacenters = 8;
  int num_contents = 2000;
  uint64_t seed = 42;

  static constexpr double kPaperBytes = 1.7e12;

  double VirtualScale(uint64_t generated_bytes) const {
    return kPaperBytes / static_cast<double>(generated_bytes);
  }
};

/// Creates the DFS table `sessions` (wide schema, naturally clustered).
Status GenerateWarehouseTable(SharkSession* session,
                              const WarehouseConfig& config);

/// The four prototypical queries of §6.4. Q1 filters one customer on one
/// day (12-dimension summary), Q2 groups by country under 8 filter
/// predicates, Q3 counts sessions/users outside 2 countries, Q4 is a
/// 7-dimension top-k grouped summary.
std::string WarehouseQ1(int customer_id, const std::string& day);
std::string WarehouseQ2();
std::string WarehouseQ3();
std::string WarehouseQ4();

}  // namespace shark

#endif  // SHARK_WORKLOADS_WAREHOUSE_H_
