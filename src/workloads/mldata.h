#ifndef SHARK_WORKLOADS_MLDATA_H_
#define SHARK_WORKLOADS_MLDATA_H_

#include <cstdint>

#include "ml/vector_ops.h"
#include "sql/session.h"

namespace shark {

/// Synthetic machine-learning dataset (§6.5): N rows of D features plus a
/// +-1 label (two separable Gaussian clusters), stored as a SQL table so the
/// SQL -> feature extraction -> iterative-algorithm pipeline of Listing 1
/// can run end to end. Paper shape: 1B rows x 10 columns = 100 GB.
struct MlDataConfig {
  int64_t rows = 200000;
  int dimensions = 10;
  int blocks = 128;
  uint64_t seed = 42;

  static constexpr double kPaperRows = 1e9;

  double VirtualScale() const {
    return kPaperRows / static_cast<double>(rows);
  }
};

/// Creates the DFS table `ml_points` with columns label, f0..f{D-1}.
Status GenerateMlTable(SharkSession* session, const MlDataConfig& config);

/// Feature column names f0..f{D-1}.
std::vector<std::string> MlFeatureColumns(int dimensions);

}  // namespace shark

#endif  // SHARK_WORKLOADS_MLDATA_H_
