#include "workloads/tpch.h"

#include "common/random.h"

namespace shark {

namespace {

const char* kShipModes[] = {"AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "REG AIR",
                            "FOB"};
const char* kNations[] = {"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
                          "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "JAPAN"};

std::string RandomAddress(Random* rng) {
  static const char* kStreets[] = {"Oak", "Pine", "Main", "Elm", "Lake",
                                   "Hill", "Park", "Mill"};
  return std::to_string(rng->UniformInt(1, 9999)) + " " +
         kStreets[rng->Uniform(8)] + " St Suite " +
         std::to_string(rng->UniformInt(1, 500));
}

}  // namespace

Status GenerateTpchTables(SharkSession* session, const TpchConfig& config) {
  Random rng(config.seed);

  // -- lineitem ---------------------------------------------------------------
  Schema lineitem_schema({{"L_ORDERKEY", TypeKind::kInt64},
                          {"L_SUPPKEY", TypeKind::kInt64},
                          {"L_QUANTITY", TypeKind::kInt64},
                          {"L_EXTENDEDPRICE", TypeKind::kDouble},
                          {"L_DISCOUNT", TypeKind::kDouble},
                          {"L_TAX", TypeKind::kDouble},
                          {"L_SHIPMODE", TypeKind::kString},
                          {"L_SHIPDATE", TypeKind::kDate},
                          {"L_RECEIPTDATE", TypeKind::kDate}});
  int64_t epoch = Value::ParseDate("1995-01-01")->int64_v();
  std::vector<Row> lineitem;
  lineitem.reserve(static_cast<size_t>(config.lineitem_rows));
  for (int64_t i = 0; i < config.lineitem_rows; ++i) {
    // Order keys ascend (4 line items per order): naturally clustered, and
    // receipt dates correlate with order keys (~2500 distinct days).
    int64_t orderkey = i / 4;
    int64_t day = (orderkey * 2500) /
                      std::max<int64_t>(config.lineitem_rows / 4, 1) +
                  rng.UniformInt(0, 6);
    int64_t ship_day = day - rng.UniformInt(1, 30);
    lineitem.push_back(Row(
        {Value::Int64(orderkey),
         Value::Int64(rng.UniformInt(0, config.supplier_rows - 1)),
         Value::Int64(rng.UniformInt(1, 50)),
         Value::Double(static_cast<double>(rng.UniformInt(90000, 10000000)) / 100.0),
         Value::Double(static_cast<double>(rng.UniformInt(0, 10)) / 100.0),
         Value::Double(static_cast<double>(rng.UniformInt(0, 8)) / 100.0),
         Value::String(kShipModes[rng.Uniform(7)]),
         Value::Date(epoch + ship_day), Value::Date(epoch + day)}));
  }
  SHARK_RETURN_NOT_OK(session->CreateDfsTable("lineitem", lineitem_schema,
                                              lineitem, config.lineitem_blocks));

  // -- supplier ---------------------------------------------------------------
  Schema supplier_schema({{"S_SUPPKEY", TypeKind::kInt64},
                          {"S_NAME", TypeKind::kString},
                          {"S_ADDRESS", TypeKind::kString},
                          {"S_NATIONKEY", TypeKind::kInt64},
                          {"S_NATION", TypeKind::kString}});
  std::vector<Row> supplier;
  supplier.reserve(static_cast<size_t>(config.supplier_rows));
  for (int64_t i = 0; i < config.supplier_rows; ++i) {
    int64_t nation = rng.UniformInt(0, 9);
    supplier.push_back(
        Row({Value::Int64(i),
             Value::String("Supplier#" + std::to_string(i)),
             Value::String(RandomAddress(&rng)),
             Value::Int64(nation), Value::String(kNations[nation])}));
  }
  SHARK_RETURN_NOT_OK(session->CreateDfsTable("supplier", supplier_schema,
                                              supplier, config.supplier_blocks));

  // -- orders -----------------------------------------------------------------
  Schema orders_schema({{"O_ORDERKEY", TypeKind::kInt64},
                        {"O_CUSTKEY", TypeKind::kInt64},
                        {"O_TOTALPRICE", TypeKind::kDouble},
                        {"O_ORDERDATE", TypeKind::kDate}});
  std::vector<Row> orders;
  orders.reserve(static_cast<size_t>(config.orders_rows));
  for (int64_t i = 0; i < config.orders_rows; ++i) {
    orders.push_back(Row(
        {Value::Int64(i), Value::Int64(rng.UniformInt(0, config.orders_rows / 10)),
         Value::Double(static_cast<double>(rng.UniformInt(1000, 500000)) / 100.0),
         Value::Date(epoch + (i * 2500) / std::max<int64_t>(config.orders_rows, 1))}));
  }
  return session->CreateDfsTable("orders", orders_schema, orders,
                                 config.orders_blocks);
}

std::string TpchAggregationQuery(const std::string& group_column) {
  if (group_column.empty()) {
    return "SELECT COUNT(*) FROM lineitem";
  }
  return "SELECT " + group_column + ", COUNT(*) FROM lineitem GROUP BY " +
         group_column;
}

std::string TpchUdfJoinQuery() {
  return "SELECT COUNT(*) FROM lineitem l JOIN supplier s "
         "ON l.L_SUPPKEY = s.S_SUPPKEY WHERE SOME_UDF(s.S_ADDRESS)";
}

}  // namespace shark
