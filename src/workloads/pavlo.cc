#include "workloads/pavlo.h"

#include "common/random.h"

namespace shark {

namespace {

std::string MakeIp(Random* rng, int64_t distinct_ips) {
  // First two octets are drawn from a 40x25=1000-prefix pool so that
  // SUBSTR(sourceIP,1,7) yields ~1K groups (the coarse aggregate); the full
  // IP is drawn from `distinct_ips` combinations.
  int64_t id = static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(distinct_ips)));
  int64_t prefix = id % 1000;
  int o1 = 100 + static_cast<int>(prefix / 25);
  int o2 = 10 + static_cast<int>(prefix % 25);
  int o3 = static_cast<int>((id / 1000) % 250) + 1;
  int o4 = static_cast<int>((id / 250000) % 250) + 1;
  return std::to_string(o1) + "." + std::to_string(o2) + "." +
         std::to_string(o3) + "." + std::to_string(o4);
}

const char* kAgents[] = {"Mozilla/5.0", "IE/6.0", "Safari/3.1", "Opera/9.5"};
const char* kCountries[] = {"USA", "GBR", "DEU", "FRA", "JPN", "BRA", "IND",
                            "CHN"};
const char* kLanguages[] = {"EN", "DE", "FR", "JA", "PT", "HI", "ZH"};
const char* kSearchWords[] = {"alpha", "bravo", "charlie", "delta", "echo",
                              "foxtrot"};

}  // namespace

Status GeneratePavloTables(SharkSession* session, const PavloConfig& config) {
  Random rng(config.seed);

  Schema rankings_schema({{"pageURL", TypeKind::kString},
                          {"pageRank", TypeKind::kInt64},
                          {"avgDuration", TypeKind::kInt64}});
  std::vector<Row> rankings;
  rankings.reserve(static_cast<size_t>(config.rankings_rows));
  for (int64_t i = 0; i < config.rankings_rows; ++i) {
    // Zipf-ish page ranks: most pages low, few very high.
    auto rank = static_cast<int64_t>(rng.Zipf(10000, 1.1));
    rankings.push_back(Row({Value::String("url" + std::to_string(i)),
                            Value::Int64(rank),
                            Value::Int64(rng.UniformInt(1, 300))}));
  }
  SHARK_RETURN_NOT_OK(session->CreateDfsTable("rankings", rankings_schema,
                                              rankings, config.rankings_blocks));

  Schema visits_schema({{"sourceIP", TypeKind::kString},
                        {"destURL", TypeKind::kString},
                        {"visitDate", TypeKind::kDate},
                        {"adRevenue", TypeKind::kDouble},
                        {"userAgent", TypeKind::kString},
                        {"countryCode", TypeKind::kString},
                        {"languageCode", TypeKind::kString},
                        {"searchWord", TypeKind::kString},
                        {"duration", TypeKind::kInt64}});
  int64_t distinct_ips =
      config.distinct_ips > 0 ? config.distinct_ips : config.uservisits_rows / 6;
  if (distinct_ips < 1) distinct_ips = 1;
  int64_t year_start = Value::ParseDate("2000-01-01")->int64_v();
  std::vector<Row> visits;
  visits.reserve(static_cast<size_t>(config.uservisits_rows));
  for (int64_t i = 0; i < config.uservisits_rows; ++i) {
    // Destination URLs are drawn uniformly, like the original benchmark's
    // generator (page popularity skew lives in pageRank, not in visit
    // counts).
    int64_t url_id = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(config.rankings_rows)));
    visits.push_back(
        Row({Value::String(MakeIp(&rng, distinct_ips)),
             Value::String("url" + std::to_string(url_id)),
             Value::Date(year_start + rng.UniformInt(0, 364)),
             Value::Double(static_cast<double>(rng.UniformInt(1, 1000)) / 100.0),
             Value::String(kAgents[rng.Uniform(4)]),
             Value::String(kCountries[rng.Uniform(8)]),
             Value::String(kLanguages[rng.Uniform(7)]),
             Value::String(kSearchWords[rng.Uniform(6)]),
             Value::Int64(rng.UniformInt(1, 600))}));
  }
  return session->CreateDfsTable("uservisits", visits_schema, visits,
                                 config.uservisits_blocks);
}

std::string PavloSelectionQuery(int64_t min_page_rank) {
  return "SELECT pageURL, pageRank FROM rankings WHERE pageRank > " +
         std::to_string(min_page_rank);
}

std::string PavloAggregationFineQuery() {
  return "SELECT sourceIP, SUM(adRevenue) FROM uservisits GROUP BY sourceIP";
}

std::string PavloAggregationCoarseQuery() {
  return "SELECT SUBSTR(sourceIP, 1, 7), SUM(adRevenue) FROM uservisits "
         "GROUP BY SUBSTR(sourceIP, 1, 7)";
}

std::string PavloJoinQuery() {
  return "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) as totalRevenue "
         "FROM rankings AS R, uservisits AS UV "
         "WHERE R.pageURL = UV.destURL AND UV.visitDate BETWEEN "
         "Date('2000-01-15') AND Date('2000-01-22') GROUP BY UV.sourceIP";
}

}  // namespace shark
