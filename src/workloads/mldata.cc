#include "workloads/mldata.h"

#include "common/random.h"

namespace shark {

std::vector<std::string> MlFeatureColumns(int dimensions) {
  std::vector<std::string> names;
  for (int d = 0; d < dimensions; ++d) names.push_back("f" + std::to_string(d));
  return names;
}

Status GenerateMlTable(SharkSession* session, const MlDataConfig& config) {
  Random rng(config.seed);
  Schema schema;
  SHARK_RETURN_NOT_OK(schema.AddField({"label", TypeKind::kInt64}));
  for (const std::string& name : MlFeatureColumns(config.dimensions)) {
    SHARK_RETURN_NOT_OK(schema.AddField({name, TypeKind::kDouble}));
  }
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(config.rows));
  for (int64_t i = 0; i < config.rows; ++i) {
    int64_t label = rng.Bernoulli(0.5) ? 1 : -1;
    Row r;
    r.fields.push_back(Value::Int64(label));
    for (int d = 0; d < config.dimensions; ++d) {
      double center = static_cast<double>(label) * (0.5 + 0.1 * d);
      r.fields.push_back(Value::Double(center + rng.NextGaussian()));
    }
    rows.push_back(std::move(r));
  }
  return session->CreateDfsTable("ml_points", schema, rows, config.blocks);
}

}  // namespace shark
