#ifndef SHARK_WORKLOADS_PAVLO_H_
#define SHARK_WORKLOADS_PAVLO_H_

#include <cstdint>

#include "sql/session.h"

namespace shark {

/// Generator for the Pavlo et al. benchmark tables (§6.2): a rankings table
/// (pageURL, pageRank, avgDuration) and a wide uservisits table whose rows
/// average ~155 bytes of text like the original's. Row counts default to a
/// ~1/6000 scale-down of the paper's 1.8B/15.5B rows; `VirtualScale()`
/// returns the multiplier that maps the scaled data back to paper size.
struct PavloConfig {
  int64_t rankings_rows = 300000;
  int64_t uservisits_rows = 2000000;
  int rankings_blocks = 800;    // ~128MB virtual blocks for 100GB
  int uservisits_blocks = 1600; // 2TB in coarser ~1.25GB blocks
  /// Distinct sourceIPs ~ rows/6 (paper: 2.5M groups from 15.5B rows would
  /// be far sparser; this keeps the "many groups" aggregate many-grouped at
  /// bench scale).
  int64_t distinct_ips = 0;  // 0: uservisits_rows / 6
  uint64_t seed = 42;

  static constexpr double kPaperRankingsRows = 1.8e9;
  static constexpr double kPaperUservisitsRows = 15.5e9;

  double VirtualScale() const {
    return kPaperUservisitsRows / static_cast<double>(uservisits_rows);
  }
};

/// Creates DFS tables `rankings` and `uservisits` in the session's catalog.
Status GeneratePavloTables(SharkSession* session, const PavloConfig& config);

/// The benchmark's queries (§6.2.1-6.2.3).
std::string PavloSelectionQuery(int64_t min_page_rank);
std::string PavloAggregationFineQuery();    // GROUP BY sourceIP (many groups)
std::string PavloAggregationCoarseQuery();  // GROUP BY SUBSTR(sourceIP,1,7)
std::string PavloJoinQuery();               // rankings x uservisits w/ dates

}  // namespace shark

#endif  // SHARK_WORKLOADS_PAVLO_H_
